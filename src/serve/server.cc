#include "serve/server.h"

#include <fcntl.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <netinet/in.h>
#include <netinet/tcp.h>

#include <cerrno>
#include <cstdint>
#include <cstring>
#include <map>

#ifdef __linux__
#include <sys/epoll.h>
#endif

#include "core/check.h"
#include "obs/http.h"

namespace ldpr::serve {

namespace {

void SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  LDPR_CHECK(flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0,
             "fcntl(O_NONBLOCK) failed: " << std::strerror(errno));
}

/// Binds a non-blocking listening Unix socket, replacing any stale socket
/// file at `path`.
int BindUdsListener(const std::string& path) {
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  LDPR_REQUIRE(path.size() < sizeof(addr.sun_path),
               "UDS path too long: " << path);
  std::strncpy(addr.sun_path, path.c_str(), sizeof(addr.sun_path) - 1);
  ::unlink(path.c_str());
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  LDPR_CHECK(fd >= 0, "socket(AF_UNIX) failed: " << std::strerror(errno));
  LDPR_CHECK(
      ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
      "bind(" << path << ") failed: " << std::strerror(errno));
  LDPR_CHECK(::listen(fd, 128) == 0,
             "listen failed: " << std::strerror(errno));
  SetNonBlocking(fd);
  return fd;
}

/// Binds a non-blocking loopback TCP listener; writes the resolved port
/// (meaningful when `port` was 0 = ephemeral) to *resolved_port.
int BindTcpListener(int port, int* resolved_port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  LDPR_CHECK(fd >= 0, "socket(AF_INET) failed: " << std::strerror(errno));
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(static_cast<std::uint16_t>(port));
  LDPR_CHECK(
      ::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0,
      "bind(127.0.0.1:" << port << ") failed: " << std::strerror(errno));
  LDPR_CHECK(::listen(fd, 128) == 0,
             "listen failed: " << std::strerror(errno));
  SetNonBlocking(fd);
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  LDPR_CHECK(::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) == 0,
             "getsockname failed: " << std::strerror(errno));
  *resolved_port = static_cast<int>(ntohs(bound.sin_port));
  return fd;
}

/// Admin connections a single server tolerates at once — scrapers, not
/// users; beyond this an accept is refused outright.
constexpr std::size_t kMaxAdminConnections = 16;

}  // namespace

struct IngestServer::Connection {
  Connection(int fd_in, IngestSink& sink, UserAdmissionTable* users,
             const WireSessionOptions& options, int lane, double now)
      : fd(fd_in), session(sink, users, options, lane, now) {}

  int fd;
  WireSession session;
  bool paused = false;
};

/// One admin scrape client: buffers the request head, then drains the
/// rendered response. Loop-thread only.
struct IngestServer::AdminConnection {
  explicit AdminConnection(int fd_in) : fd(fd_in) {}

  int fd;
  std::string request;
  std::string response;
  std::size_t written = 0;
  bool responding = false;  ///< request complete, response being drained
};

/// Readiness notification behind one interface: epoll(7) on Linux, poll(2)
/// elsewhere. Ingest connections only ever track read interest (the server
/// writes nothing at them); admin connections flip to write interest while
/// a response drains. A registered fd with all interest off still reports
/// hangups/errors, so a paused connection's death is noticed.
class IngestServer::Poller {
 public:
#ifdef __linux__
  Poller() : epoll_fd_(::epoll_create1(0)) {
    LDPR_CHECK(epoll_fd_ >= 0,
               "epoll_create1 failed: " << std::strerror(errno));
  }
  ~Poller() { ::close(epoll_fd_); }

  void Add(int fd) {
    epoll_event event{};
    event.events = EPOLLIN;
    event.data.fd = fd;
    LDPR_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &event) == 0,
               "epoll_ctl(ADD) failed: " << std::strerror(errno));
  }

  void SetInterest(int fd, bool read, bool write) {
    epoll_event event{};
    event.events = (read ? static_cast<std::uint32_t>(EPOLLIN) : 0u) |
                   (write ? static_cast<std::uint32_t>(EPOLLOUT)
                          : 0u);  // 0 still delivers EPOLLHUP/ERR
    event.data.fd = fd;
    LDPR_CHECK(::epoll_ctl(epoll_fd_, EPOLL_CTL_MOD, fd, &event) == 0,
               "epoll_ctl(MOD) failed: " << std::strerror(errno));
  }
  void SetWantRead(int fd, bool want) { SetInterest(fd, want, false); }

  void Remove(int fd) { ::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr); }

  void Wait(int timeout_ms, std::vector<int>& ready) {
    ready.clear();
    epoll_event events[64];
    const int n = ::epoll_wait(epoll_fd_, events, 64, timeout_ms);
    for (int i = 0; i < n; ++i) ready.push_back(events[i].data.fd);
  }

 private:
  int epoll_fd_;
#else
  void Add(int fd) { interest_[fd] = POLLIN; }
  void SetInterest(int fd, bool read, bool write) {
    interest_[fd] = static_cast<short>((read ? POLLIN : 0) |
                                       (write ? POLLOUT : 0));
  }
  void SetWantRead(int fd, bool want) { SetInterest(fd, want, false); }
  void Remove(int fd) { interest_.erase(fd); }

  void Wait(int timeout_ms, std::vector<int>& ready) {
    ready.clear();
    std::vector<pollfd> fds;
    fds.reserve(interest_.size());
    for (const auto& [fd, events] : interest_) {
      fds.push_back(pollfd{fd, events, 0});
    }
    const int n = ::poll(fds.data(), fds.size(), timeout_ms);
    if (n <= 0) return;
    for (const pollfd& p : fds) {
      if (p.revents & (POLLIN | POLLOUT | POLLHUP | POLLERR | POLLNVAL)) {
        ready.push_back(p.fd);
      }
    }
  }

 private:
  std::map<int, short> interest_;
#endif
};

IngestServer::IngestServer(IngestSink& sink, const ServerOptions& options)
    : sink_(sink), options_(options) {
  if (options_.admission.per_user_rate > 0.0) {
    users_ = std::make_unique<UserAdmissionTable>(options_.admission);
  }
  read_buffer_.resize(options_.read_chunk);
}

IngestServer::~IngestServer() { Stop(); }

void IngestServer::Start() {
  LDPR_REQUIRE(!loop_.joinable(), "server already started");
  LDPR_REQUIRE(!options_.uds_path.empty() || options_.tcp_port >= 0 ||
                   !options_.admin_uds_path.empty() ||
                   options_.admin_tcp_port >= 0,
               "server needs a UDS path or a TCP port to listen on");

  poller_ = std::make_unique<Poller>();
  if (!options_.uds_path.empty()) {
    uds_listen_ = BindUdsListener(options_.uds_path);
    poller_->Add(uds_listen_);
  }
  if (options_.tcp_port >= 0) {
    tcp_listen_ = BindTcpListener(options_.tcp_port, &tcp_port_);
    poller_->Add(tcp_listen_);
  }
  if (!options_.admin_uds_path.empty()) {
    admin_uds_listen_ = BindUdsListener(options_.admin_uds_path);
    poller_->Add(admin_uds_listen_);
  }
  if (options_.admin_tcp_port >= 0) {
    admin_tcp_listen_ =
        BindTcpListener(options_.admin_tcp_port, &admin_tcp_port_);
    poller_->Add(admin_tcp_listen_);
  }

  int pipe_fds[2];
  LDPR_CHECK(::pipe(pipe_fds) == 0,
             "pipe failed: " << std::strerror(errno));
  wake_read_ = pipe_fds[0];
  wake_write_ = pipe_fds[1];
  SetNonBlocking(wake_read_);
  SetNonBlocking(wake_write_);
  poller_->Add(wake_read_);

  if (options_.metrics) {
    obs_ = std::make_unique<Obs>();
    obs_->registry = options_.metrics;
    obs_->pause_seconds = options_.metrics->GetHistogram(
        "ldpr_conn_pause_seconds", "",
        "Pacing pauses imposed on connections (token-bucket backpressure)",
        1, obs::HistogramUnit::kSeconds);
    // Lifecycle and session totals come straight out of counters() at
    // scrape time — the record path already maintains them.
    obs_->callback_id = options_.metrics->RegisterCallback(
        [this](std::vector<obs::Sample>& out) {
          const ServerCounters sc = counters();
          const auto counter = [&out](const char* name, long long value,
                                      const char* help) {
            out.push_back({name, "", static_cast<double>(value),
                           obs::MetricKind::kCounter, help});
          };
          counter("ldpr_server_connections_total", sc.connections,
                  "Connections accepted, lifetime");
          counter("ldpr_server_closed_total", sc.closed,
                  "Connections closed (peer EOF / error / shed)");
          counter("ldpr_server_shed_connections_total", sc.shed_connections,
                  "Connections closed by load shedding");
          counter("ldpr_server_records_total", sc.sessions.records,
                  "Wire records framed off connections");
          counter("ldpr_server_wire_bytes_total", sc.sessions.wire_bytes,
                  "Bytes read off connections");
          counter("ldpr_server_protocol_errors_total",
                  sc.sessions.protocol_errors,
                  "Connections dropped for malformed framing");
          counter("ldpr_server_reports_total", sc.sessions.ingest.reports,
                  "Reports the sessions saw accepted by the sink");
          ForEachRejectField(
              sc.sessions.ingest, [&out](const char* name, long long value) {
                out.push_back({"ldpr_server_rejects_total",
                               std::string("reason=\"") + name + "\"",
                               static_cast<double>(value),
                               obs::MetricKind::kCounter,
                               "Records refused at the front door, by "
                               "reject reason"});
              });
          out.push_back({"ldpr_server_live_connections", "",
                         static_cast<double>(sc.connections - sc.closed),
                         obs::MetricKind::kGauge, "Connections open now"});
          out.push_back({"ldpr_server_paused_connections", "",
                         static_cast<double>(PausedCount(MonotonicSeconds())),
                         obs::MetricKind::kGauge,
                         "Connections currently pacing-paused"});
          out.push_back({"ldpr_server_uptime_seconds", "", sc.seconds,
                         obs::MetricKind::kGauge,
                         "Wall seconds since Start()"});
        });
  }

  stop_.store(false, std::memory_order_relaxed);
  started_at_ = MonotonicSeconds();
  loop_ = std::thread([this] { Loop(); });
}

void IngestServer::Stop() {
  if (!loop_.joinable()) return;
  stop_.store(true, std::memory_order_relaxed);
  const char byte = 1;
  [[maybe_unused]] const auto ignored = ::write(wake_write_, &byte, 1);
  loop_.join();

  if (obs_) {
    obs_->registry->UnregisterCallback(obs_->callback_id);
    obs_.reset();
  }
  for (auto& [fd, conn] : admin_conns_) {
    poller_->Remove(fd);
    ::close(fd);
  }
  admin_conns_.clear();

  std::lock_guard<std::mutex> guard(mutex_);
  for (auto& [fd, conn] : conns_) {
    totals_.sessions.Merge(conn->session.counters());
    ++totals_.closed;
    poller_->Remove(fd);
    ::close(fd);
  }
  conns_.clear();
  for (int* listener : {&uds_listen_, &tcp_listen_, &admin_uds_listen_,
                        &admin_tcp_listen_, &wake_read_, &wake_write_}) {
    if (*listener >= 0) ::close(*listener);
    *listener = -1;
  }
  if (!options_.uds_path.empty()) ::unlink(options_.uds_path.c_str());
  if (!options_.admin_uds_path.empty())
    ::unlink(options_.admin_uds_path.c_str());
  totals_.seconds = MonotonicSeconds() - started_at_;
  poller_.reset();
}

ServerCounters IngestServer::counters() const {
  std::lock_guard<std::mutex> guard(mutex_);
  ServerCounters out = totals_;
  for (const auto& [fd, conn] : conns_) {
    out.sessions.Merge(conn->session.counters());
  }
  if (loop_.joinable()) out.seconds = MonotonicSeconds() - started_at_;
  return out;
}

void IngestServer::Loop() {
  std::vector<int> ready;
  while (!stop_.load(std::memory_order_relaxed)) {
    int timeout_ms = 200;
    {
      const double now = MonotonicSeconds();
      std::lock_guard<std::mutex> guard(mutex_);
      // Resume connections whose pacing debt refilled; wake for the next
      // one due.
      for (auto& [fd, conn] : conns_) {
        if (!conn->paused) continue;
        const double delay = conn->session.resume_at() - now;
        if (delay <= 0.0) {
          conn->paused = false;
          poller_->SetWantRead(fd, true);
        } else {
          const int ms = static_cast<int>(delay * 1000.0) + 1;
          if (ms < timeout_ms) timeout_ms = ms;
        }
      }
      // Sustained-overload monitor: too many connections rate-paused for
      // longer than the grace period sheds the lowest-priority one.
      if (options_.shed_paused_watermark >= 0) {
        int paused = 0;
        for (const auto& [fd, conn] : conns_) {
          if (conn->paused) ++paused;
        }
        if (paused > options_.shed_paused_watermark) {
          if (overload_since_ < 0.0) overload_since_ = now;
          if (now - overload_since_ >= options_.shed_grace_seconds) {
            ShedLowestPriority();
            overload_since_ = now;
          }
        } else {
          overload_since_ = -1.0;
        }
      }
    }
    poller_->Wait(timeout_ms, ready);
    const double now = MonotonicSeconds();
    for (int fd : ready) {
      if (fd == wake_read_) {
        char drain[64];
        while (::read(wake_read_, drain, sizeof(drain)) > 0) {
        }
      } else if (fd == uds_listen_ || fd == tcp_listen_) {
        AcceptReady(fd, now);
      } else if (fd == admin_uds_listen_ || fd == admin_tcp_listen_) {
        AdminAcceptReady(fd);
      } else if (admin_conns_.count(fd) != 0) {
        AdminEventReady(fd);
      } else {
        ReadReady(fd, now);
      }
    }
  }
}

void IngestServer::AcceptReady(int listener_fd, double now) {
  while (true) {
    const int fd = ::accept(listener_fd, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN (drained) or transient error
    SetNonBlocking(fd);
    std::lock_guard<std::mutex> guard(mutex_);
    if (static_cast<int>(conns_.size()) >= options_.max_connections &&
        !ShedLowestPriority()) {
      ::close(fd);  // capacity and nothing sheddable: refuse
      continue;
    }
    const int lane = static_cast<int>(next_lane_++ %
                                      static_cast<long long>(1 << 20));
    conns_.emplace(fd, std::make_unique<Connection>(
                           fd, sink_, users_.get(), options_.session, lane,
                           now));
    ++totals_.connections;
    poller_->Add(fd);
  }
}

bool IngestServer::ReadReady(int fd, double now) {
  // One chunk per readiness event keeps connections fair under load; the
  // level-triggered poller re-reports the fd while bytes remain.
  const ssize_t n = ::read(fd, read_buffer_.data(), read_buffer_.size());
  if (n < 0) {
    if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
      return true;
    }
    CloseConnection(fd, /*shed=*/false);
    return false;
  }
  if (n == 0) {  // peer closed
    CloseConnection(fd, /*shed=*/false);
    return false;
  }
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = conns_.find(fd);
  if (it == conns_.end()) return false;
  Connection& conn = *it->second;
  if (!conn.session.Feed({read_buffer_.data(), static_cast<std::size_t>(n)},
                         now)) {
    // Protocol error: fold the session's counters in and drop the peer.
    totals_.sessions.Merge(conn.session.counters());
    ++totals_.closed;
    poller_->Remove(fd);
    ::close(fd);
    conns_.erase(it);
    return false;
  }
  if (conn.session.paused(now) && !conn.paused) {
    conn.paused = true;
    poller_->SetWantRead(fd, false);
    if (obs_)
      obs_->pause_seconds->RecordSeconds(conn.session.resume_at() - now);
  }
  return true;
}

void IngestServer::AdminAcceptReady(int listener_fd) {
  while (true) {
    const int fd = ::accept(listener_fd, nullptr, nullptr);
    if (fd < 0) return;  // EAGAIN (drained) or transient error
    if (admin_conns_.size() >= kMaxAdminConnections) {
      ::close(fd);
      continue;
    }
    SetNonBlocking(fd);
    admin_conns_.emplace(fd, std::make_unique<AdminConnection>(fd));
    poller_->Add(fd);
  }
}

void IngestServer::AdminEventReady(int fd) {
  auto it = admin_conns_.find(fd);
  if (it == admin_conns_.end()) return;
  AdminConnection& conn = *it->second;
  if (!conn.responding) {
    const ssize_t n = ::read(fd, read_buffer_.data(), read_buffer_.size());
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      CloseAdmin(fd);
      return;
    }
    if (n == 0) {  // peer gave up mid-request
      CloseAdmin(fd);
      return;
    }
    conn.request.append(reinterpret_cast<const char*>(read_buffer_.data()),
                        static_cast<std::size_t>(n));
    if (conn.request.size() > obs::kMaxAdminRequestBytes) {
      CloseAdmin(fd);
      return;
    }
    if (!obs::HttpHeaderComplete(conn.request)) return;
    // Render on the loop thread: registry callbacks take the lane / server
    // mutexes briefly, so a mid-epoch scrape sees exact counters without
    // ever blocking on a slow scraper (writes below stay non-blocking).
    conn.response = obs::HandleAdminRequest(conn.request, AdminRegistry());
    conn.responding = true;
    poller_->SetInterest(fd, /*read=*/false, /*write=*/true);
  }
  while (conn.written < conn.response.size()) {
    const ssize_t n = ::write(fd, conn.response.data() + conn.written,
                              conn.response.size() - conn.written);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) return;
      CloseAdmin(fd);
      return;
    }
    conn.written += static_cast<std::size_t>(n);
  }
  CloseAdmin(fd);  // response fully drained; close-delimited like HTTP/1.0
}

void IngestServer::CloseAdmin(int fd) {
  auto it = admin_conns_.find(fd);
  if (it == admin_conns_.end()) return;
  poller_->Remove(fd);
  ::close(fd);
  admin_conns_.erase(it);
}

obs::MetricsRegistry& IngestServer::AdminRegistry() const {
  return options_.metrics ? *options_.metrics : obs::MetricsRegistry::Global();
}

void IngestServer::CloseConnection(int fd, bool shed) {
  std::lock_guard<std::mutex> guard(mutex_);
  auto it = conns_.find(fd);
  if (it == conns_.end()) return;
  totals_.sessions.Merge(it->second->session.counters());
  ++totals_.closed;
  if (shed) ++totals_.shed_connections;
  poller_->Remove(fd);
  ::close(fd);
  conns_.erase(it);
}

bool IngestServer::ShedLowestPriority() {
  // Caller holds mutex_.
  int victim = -1;
  double lowest = 0.0;
  for (const auto& [fd, conn] : conns_) {
    const double priority = conn->session.Priority();
    if (victim < 0 || priority < lowest) {
      victim = fd;
      lowest = priority;
    }
  }
  if (victim < 0) return false;
  auto it = conns_.find(victim);
  totals_.sessions.Merge(it->second->session.counters());
  ++totals_.closed;
  ++totals_.shed_connections;
  poller_->Remove(victim);
  ::close(victim);
  conns_.erase(it);
  return true;
}

int IngestServer::PausedCount(double now) const {
  std::lock_guard<std::mutex> guard(mutex_);
  int paused = 0;
  for (const auto& [fd, conn] : conns_) {
    if (conn->session.paused(now)) ++paused;
  }
  return paused;
}

}  // namespace ldpr::serve
