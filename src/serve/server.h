#ifndef LDPR_SERVE_SERVER_H_
#define LDPR_SERVE_SERVER_H_

// The network front door: a single-threaded event-loop (epoll on Linux,
// poll(2) elsewhere) TCP / Unix-domain-socket server that frames
// length-prefixed wire records (serve/wire_session.h format) off
// non-blocking connections into any IngestSink — the lock-striped
// Collector, the longitudinal pipeline with its replay classification, or
// the multidimensional front-end, all through the one IngestRequest API.
//
// Admission control happens in layers, each surfacing as a counted reject
// (never an exception, never silent):
//   * per-connection pacing (WireSessionOptions::conn_rate): backpressure —
//     the loop stops polling a connection for reads until its pacing debt
//     refills, so the kernel socket buffer, then the peer, absorb the
//     excess; nothing already read is dropped;
//   * per-user token buckets (AdmissionOptions::per_user_rate): a user over
//     rate has that record rejected kRateLimited before it reaches the
//     sink;
//   * duplicate (user, epoch) rejection: the LongitudinalCollector sink
//     classifies under the lane mutex and rejects kDuplicate;
//   * load shedding: at connection capacity, and under sustained overload
//     (too many connections rate-paused for longer than the grace period),
//     the lowest-priority connection (WireSession::Priority) is dropped.
//
// One loop thread owns all sockets and sessions; Ingest calls run on it.
// The sink's lock-striped lanes make that safe alongside any in-process
// producers, and connections are assigned round-robin lane hints so
// concurrent connections decode into distinct lanes.

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/stats.h"
#include "obs/metrics.h"
#include "serve/admission.h"
#include "serve/ingest.h"
#include "serve/wire_session.h"

namespace ldpr::serve {

struct ServerOptions {
  /// Listen on this Unix-domain socket path when non-empty (an existing
  /// socket file at the path is replaced).
  std::string uds_path;
  /// Listen on 127.0.0.1:tcp_port when >= 0 (0 = ephemeral; the resolved
  /// port is readable via tcp_port() after Start).
  int tcp_port = -1;
  /// Connection capacity. An accept beyond it sheds the lowest-priority
  /// live connection to make room.
  int max_connections = 64;
  /// Per-connection framing + pacing configuration.
  WireSessionOptions session;
  /// Per-user admission (disabled unless per_user_rate > 0).
  AdmissionOptions admission;
  /// Sustained-overload shedding: when more than `shed_paused_watermark`
  /// connections are rate-paused continuously for `shed_grace_seconds`,
  /// drop the lowest-priority connection (and restart the grace clock).
  /// Watermark < 0 disables the monitor; capacity shedding stays active.
  int shed_paused_watermark = -1;
  double shed_grace_seconds = 0.5;
  /// read(2) chunk size per readable connection per loop iteration.
  std::size_t read_chunk = 64 << 10;

  /// Admin scrape endpoint: a read-only HTTP listener (`GET /metrics` in
  /// Prometheus text, `/metrics.json`) riding the same event loop on its
  /// own socket(s), so it is safe to scrape mid-epoch and costs nothing
  /// while nobody connects. Bound when admin_uds_path is non-empty /
  /// admin_tcp_port >= 0 (0 = ephemeral, resolved via admin_tcp_port()).
  std::string admin_uds_path;
  int admin_tcp_port = -1;
  /// Telemetry sink. When set the server exports its connection lifecycle,
  /// session totals and per-reason rejects as `ldpr_server_*` series and
  /// records the pause-time histogram there. The admin endpoint renders
  /// this registry, falling back to obs::MetricsRegistry::Global() when
  /// unset.
  obs::MetricsRegistry* metrics = nullptr;
};

struct ServerCounters {
  long long connections = 0;       ///< accepted connections, lifetime
  long long closed = 0;            ///< closed (peer EOF / error / shed)
  long long shed_connections = 0;  ///< closed by load shedding
  double seconds = 0.0;            ///< wall time since Start
  /// Session totals aggregated over live and closed connections.
  SessionCounters sessions;
};

/// The socket ingest server. Start() spawns the loop thread; Stop() (or
/// destruction) joins it and closes every socket. The sink must outlive
/// the server.
class IngestServer {
 public:
  IngestServer(IngestSink& sink, const ServerOptions& options);
  ~IngestServer();

  IngestServer(const IngestServer&) = delete;
  IngestServer& operator=(const IngestServer&) = delete;

  /// Binds the configured listeners (ingest and/or admin) and starts the
  /// loop thread. Throws on bind/listen failure. At least one listener must
  /// be configured; an admin-only server is legal (in-process ingest with a
  /// live scrape endpoint).
  void Start();

  /// Stops the loop, closes every connection and listener, and folds the
  /// remaining live-session counters into the totals. Idempotent.
  void Stop();

  bool running() const { return loop_.joinable(); }
  /// The bound UDS path ("" when not listening on one).
  const std::string& uds_path() const { return options_.uds_path; }
  /// The bound TCP port (-1 when not listening; resolved when ephemeral).
  int tcp_port() const { return tcp_port_; }
  /// The bound admin TCP port (-1 when not listening on one).
  int admin_tcp_port() const { return admin_tcp_port_; }

  /// Point-in-time counters: totals of closed connections plus a live
  /// snapshot of every open session.
  ServerCounters counters() const;

 private:
  struct Connection;
  struct AdminConnection;
  class Poller;

  void Loop();
  void AcceptReady(int listener_fd, double now);
  /// Reads one chunk from a connection; closes it on EOF / error /
  /// protocol error. Returns false when the connection was closed.
  bool ReadReady(int fd, double now);
  void CloseConnection(int fd, bool shed);
  /// Drops the lowest-priority connection; false when none exist.
  bool ShedLowestPriority();
  int PausedCount(double now) const;

  /// Admin endpoint plumbing, all loop-thread only: accept, buffer the
  /// request head, render once it is complete, then drain the response
  /// (partial writes resume on EPOLLOUT) and close.
  void AdminAcceptReady(int listener_fd);
  void AdminEventReady(int fd);
  void CloseAdmin(int fd);
  obs::MetricsRegistry& AdminRegistry() const;

  IngestSink& sink_;
  ServerOptions options_;
  std::unique_ptr<UserAdmissionTable> users_;
  std::unique_ptr<Poller> poller_;

  int uds_listen_ = -1;
  int tcp_listen_ = -1;
  int tcp_port_ = -1;
  int admin_uds_listen_ = -1;
  int admin_tcp_listen_ = -1;
  int admin_tcp_port_ = -1;
  int wake_read_ = -1;
  int wake_write_ = -1;

  std::thread loop_;
  std::atomic<bool> stop_{false};
  double started_at_ = 0.0;

  /// Guards conns_ and totals_ (the loop thread versus counters()/Stop()).
  mutable std::mutex mutex_;
  std::unordered_map<int, std::unique_ptr<Connection>> conns_;
  ServerCounters totals_;
  long long next_lane_ = 0;
  double overload_since_ = -1.0;  ///< < 0: not currently over the watermark
  std::vector<std::uint8_t> read_buffer_;

  /// Loop-thread only (Stop touches it strictly after joining the loop).
  std::unordered_map<int, std::unique_ptr<AdminConnection>> admin_conns_;

  /// Set iff options.metrics != nullptr.
  struct Obs {
    obs::MetricsRegistry* registry = nullptr;
    std::shared_ptr<obs::Histogram> pause_seconds;
    long long callback_id = 0;
  };
  std::unique_ptr<Obs> obs_;
};

}  // namespace ldpr::serve

#endif  // LDPR_SERVE_SERVER_H_
