#include "serve/wire_session.h"

#include "core/check.h"

namespace ldpr::serve {

namespace {

std::uint64_t ReadBe64(const std::uint8_t* p) {
  std::uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | p[i];
  return v;
}

}  // namespace

void AppendWireRecord(std::uint64_t user, std::span<const std::uint8_t> frame,
                      std::vector<std::uint8_t>& out) {
  const std::size_t body = kRecordUserBytes + frame.size();
  LDPR_REQUIRE(body <= 0xFFFF, "wire record body of " << body
                                   << " bytes exceeds the u16 length prefix");
  out.push_back(static_cast<std::uint8_t>(body >> 8));
  out.push_back(static_cast<std::uint8_t>(body & 0xFF));
  for (int i = 7; i >= 0; --i) {
    out.push_back(static_cast<std::uint8_t>((user >> (8 * i)) & 0xFF));
  }
  out.insert(out.end(), frame.begin(), frame.end());
}

WireSession::WireSession(IngestSink& sink, UserAdmissionTable* users,
                         const WireSessionOptions& options, int lane,
                         double now)
    : sink_(sink),
      users_(users),
      options_(options),
      pacing_(options.conn_rate, options.conn_burst, now),
      lane_(lane) {}

bool WireSession::Feed(std::span<const std::uint8_t> data, double now) {
  counters_.wire_bytes += static_cast<long long>(data.size());
  // Hot path: no torn tail pending, so records are framed straight out of
  // the caller's chunk with zero copies; only a torn tail (or a chunk
  // arriving while one is pending) touches the reassembly buffer.
  const std::uint8_t* p;
  std::size_t n;
  if (buffer_.empty()) {
    p = data.data();
    n = data.size();
  } else {
    buffer_.insert(buffer_.end(), data.begin(), data.end());
    p = buffer_.data();
    n = buffer_.size();
  }
  std::size_t off = 0;
  while (n - off >= kRecordHeaderBytes) {
    const std::size_t body = (static_cast<std::size_t>(p[off]) << 8) |
                             static_cast<std::size_t>(p[off + 1]);
    if (body < kRecordUserBytes ||
        body - kRecordUserBytes > options_.max_frame) {
      ++counters_.protocol_errors;
      buffer_.clear();
      return false;
    }
    if (n - off < kRecordHeaderBytes + body) break;
    ProcessRecord(p + off + kRecordHeaderBytes, body, now);
    off += kRecordHeaderBytes + body;
  }
  if (!buffer_.empty()) {
    buffer_.erase(buffer_.begin(),
                  buffer_.begin() + static_cast<std::ptrdiff_t>(off));
  } else if (off < n) {
    buffer_.assign(p + off, p + n);
  }
  // Pacing backpressure: everything read was processed; stop reading until
  // the bucket can cover at least one more record.
  resume_at_ = now + pacing_.DelayUntil(now, 1.0);
  return true;
}

void WireSession::ProcessRecord(const std::uint8_t* body,
                                std::size_t body_size, double now) {
  ++counters_.records;
  pacing_.Charge(now);
  const std::uint64_t user_id = ReadBe64(body);
  IngestRequest request;
  request.frame = {body + kRecordUserBytes, body_size - kRecordUserBytes};
  request.lane = lane_;
  if (user_id != kAnonymousUser) {
    request.user = static_cast<long long>(user_id);
    if (users_ != nullptr && !users_->Admit(*request.user, now)) {
      CountReject(counters_.ingest, RejectReason::kRateLimited);
      return;
    }
  }
  const IngestResult result = sink_.Ingest(request);
  if (result.accepted) {
    ++counters_.ingest.reports;
    counters_.ingest.bytes += static_cast<long long>(request.frame.size());
  } else {
    CountReject(counters_.ingest, result.reason);
  }
}

}  // namespace ldpr::serve
