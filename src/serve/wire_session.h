#ifndef LDPR_SERVE_WIRE_SESSION_H_
#define LDPR_SERVE_WIRE_SESSION_H_

// Per-connection framing + admission state of the socket front door.
//
// Wire record format (the unit one client submission occupies on a
// connection; all integers big-endian):
//
//   u16 body_length | u64 user_id | frame bytes (body_length - 8 of them)
//
// body_length counts everything after itself, so a record occupies
// 2 + body_length bytes. user_id == kAnonymousUser marks an unattributed
// frame (ingested with request.user unset); the frame bytes are one
// sanitized report in the exact wire codec (fo/wire) and are handed to the
// IngestSink untouched — a wrong-sized or malformed frame is that sink's
// counted kMalformed reject, and the connection survives. Only unframeable
// input is a protocol error that kills the connection: a body too short to
// hold the user id, or longer than the session's max_body bound.
//
// A WireSession owns the torn-frame reassembly buffer (bounded: complete
// records are consumed per Feed, so at most one partial record is ever
// buffered), the per-connection pacing bucket (backpressure: records
// already read are never dropped, but the session tells the server when to
// stop reading), and the per-reason counters the server aggregates. It
// performs no I/O — Feed takes whatever read() produced, which is what
// makes torn-frame handling fuzzable without sockets.

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "core/stats.h"
#include "serve/admission.h"
#include "serve/ingest.h"

namespace ldpr::serve {

/// user_id sentinel for frames not attributed to any user.
inline constexpr std::uint64_t kAnonymousUser = ~0ull;
/// Bytes of the record length prefix (u16 BE).
inline constexpr std::size_t kRecordHeaderBytes = 2;
/// Bytes of the user id field (u64 BE), first in every record body.
inline constexpr std::size_t kRecordUserBytes = 8;

/// Appends one framed record to `out` (the client half of the format).
/// frame.size() must fit the u16 body length alongside the user id.
void AppendWireRecord(std::uint64_t user, std::span<const std::uint8_t> frame,
                      std::vector<std::uint8_t>& out);

struct WireSessionOptions {
  /// Protocol bound on body_length - kRecordUserBytes (the frame bytes). A
  /// record announcing more is a protocol error: the server serves one
  /// oracle whose reports are a few bytes, so a large length is an attack
  /// or a desynchronized peer, and closing beats buffering it.
  std::size_t max_frame = 1 << 12;
  /// Per-connection sustained record rate (records/second); <= 0 unlimited.
  /// Enforced as backpressure, never rejects: every record read is
  /// processed, and the session reports when reading should resume.
  double conn_rate = 0.0;
  /// Per-connection burst allowance (pacing bucket capacity).
  double conn_burst = 4096.0;
};

struct SessionCounters {
  /// Complete records framed off the connection (accepted + rejected).
  long long records = 0;
  /// Raw connection bytes consumed (framing overhead included).
  long long wire_bytes = 0;
  /// Unframeable input (0 or 1 per session: the connection closes on it).
  long long protocol_errors = 0;
  /// Per-reason ingest outcome of the framed records: reports/bytes count
  /// accepted frames; rejects are split malformed / duplicate /
  /// rate-limited / shed / closed-epoch (rate_limited here is the per-USER
  /// admission table — per-connection pacing pauses reads instead).
  IngestCounters ingest;

  void Merge(const SessionCounters& other) {
    records += other.records;
    wire_bytes += other.wire_bytes;
    protocol_errors += other.protocol_errors;
    ingest.Merge(other.ingest);
  }
};

class WireSession {
 public:
  /// `sink` and `users` (nullable: no per-user admission) must outlive the
  /// session. `lane` is the lane hint every request from this connection
  /// carries — the server assigns connections round-robin so concurrent
  /// connections land on distinct collector lanes. `now` seeds the pacing
  /// bucket's clock.
  WireSession(IngestSink& sink, UserAdmissionTable* users,
              const WireSessionOptions& options, int lane, double now);

  /// Consumes one read() chunk: frames complete records (ingesting each),
  /// buffers a torn tail for the next chunk. Returns false on a protocol
  /// error — the caller must close the connection; nothing more will be
  /// processed. `now` timestamps every record in the chunk (one clock read
  /// per chunk keeps the per-record cost flat).
  bool Feed(std::span<const std::uint8_t> data, double now);

  /// Earliest time reading should resume; paused() while the pacing debt
  /// from already-processed records is still refilling.
  double resume_at() const { return resume_at_; }
  bool paused(double now) const { return resume_at_ > now; }

  /// Shed priority: the server drops the lowest first. Sessions earn credit
  /// per accepted report and lose it fourfold per reject, so under
  /// overload the abusive or desynchronized connections go first and a
  /// well-behaved high-volume reporter goes last.
  double Priority() const {
    return static_cast<double>(counters_.ingest.reports) -
           4.0 * static_cast<double>(counters_.ingest.TotalRejected()) -
           static_cast<double>(buffer_.size());
  }

  const SessionCounters& counters() const { return counters_; }
  /// Bytes of the buffered partial record (< one whole record by
  /// construction — the bounded read buffer).
  std::size_t buffered() const { return buffer_.size(); }
  int lane() const { return lane_; }

 private:
  void ProcessRecord(const std::uint8_t* body, std::size_t body_size,
                     double now);

  IngestSink& sink_;
  UserAdmissionTable* users_;
  WireSessionOptions options_;
  TokenBucket pacing_;
  int lane_;
  std::vector<std::uint8_t> buffer_;  ///< torn record tail
  SessionCounters counters_;
  double resume_at_ = 0.0;
};

}  // namespace ldpr::serve

#endif  // LDPR_SERVE_WIRE_SESSION_H_
