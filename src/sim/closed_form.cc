#include "sim/closed_form.h"

#include "core/check.h"

namespace ldpr::sim {

multidim::AttributeHistograms BuildAttributeHistograms(
    const data::Dataset& dataset) {
  const int n = dataset.n();
  const int d = dataset.d();
  LDPR_REQUIRE(n >= 1, "BuildAttributeHistograms requires a non-empty dataset");
  multidim::AttributeHistograms hists(d);
  for (int j = 0; j < d; ++j) hists[j].assign(dataset.domain_size(j), 0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < d; ++j) {
      ++hists[j][dataset.value(i, j)];
    }
  }
  return hists;
}

}  // namespace ldpr::sim
