#ifndef LDPR_SIM_CLOSED_FORM_H_
#define LDPR_SIM_CLOSED_FORM_H_

// The closed-form ("fast profile") multidimensional estimation path.
//
// sim::Mode::kClosedForm replaces per-user simulation with O(k) tally draws
// for single-attribute collections (RunCollection); this header is its
// multidimensional counterpart: a dataset is summarized once into
// per-attribute true-value histograms, and every simulated collection round
// then draws its aggregate support counts straight from the closed-form
// samplers in multidim/closed_form.h — no per-user loop anywhere.
//
// The RNG streams necessarily differ from RunMultidim's per-user streams,
// so the experiment layer gates this path behind
// exp::RunProfile::Fidelity::kFast and pins separate goldens; per attribute
// the sampled estimates are distribution-exact
// (sim_fast_profile_test asserts the 3-sigma equivalence).

#include <vector>

#include "core/rng.h"
#include "data/dataset.h"
#include "multidim/closed_form.h"
#include "multidim/numeric.h"

namespace ldpr::sim {

/// Summarizes the dataset into per-attribute true-value histograms — the
/// only pass over the n users the fast profile ever makes. Scenarios hoist
/// this out of their grid loops (O(n d) once, O(sum_j k_j) per cell after).
multidim::AttributeHistograms BuildAttributeHistograms(
    const data::Dataset& dataset);

/// One simulated collection round on the closed-form path, mirroring
/// RunMultidim's signature: works for every Solution with an
/// EstimateClosedForm overload (Spl, Smp, SmpAdaptive, RsFd, RsRfd,
/// RsFdAdaptive). Prefer the hist-consuming overload inside grid loops.
template <typename Solution>
std::vector<std::vector<double>> RunMultidimClosedForm(
    const Solution& solution, const data::Dataset& dataset, Rng& rng) {
  return multidim::EstimateClosedForm(
      solution, BuildAttributeHistograms(dataset),
      static_cast<long long>(dataset.n()), rng);
}

}  // namespace ldpr::sim

#endif  // LDPR_SIM_CLOSED_FORM_H_
