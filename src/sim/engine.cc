#include "sim/engine.h"

#include <algorithm>

#include "core/check.h"

namespace ldpr::sim {

int AutoShardCount(long long n) {
  if (n <= 0) return 0;
  // Enough shards to keep any sane worker pool busy, few enough that the
  // per-shard aggregator state (O(k) counts) stays negligible. Depends only
  // on n so that one seed gives one result on every machine.
  constexpr long long kUsersPerShard = 4096;
  const long long shards = (n + kUsersPerShard - 1) / kUsersPerShard;
  return static_cast<int>(std::clamp<long long>(shards, 1, 256));
}

int ResolveShardCount(long long n, const Options& options) {
  return options.num_shards > 0 ? options.num_shards : AutoShardCount(n);
}

void ShardedRun(
    long long n, Rng& root, const Options& options,
    const std::function<void(int, long long, long long, Rng&)>& fn) {
  const int shards = ResolveShardCount(n, options);
  if (shards <= 0) return;
  // One Split advances the root (so back-to-back runs get fresh streams);
  // Fork(s) then derives shard streams without any shared mutable state.
  const Rng base = root.Split();
  ParallelForShards(
      n, shards,
      [&](int shard, long long lo, long long hi) {
        Rng rng = base.Fork(static_cast<std::uint64_t>(shard));
        fn(shard, lo, hi, rng);
      },
      options.threads);
}

void RunCells(long long num_cells, const std::function<void(long long)>& fn,
              int threads) {
  ParallelFor(0, num_cells, fn, threads);
}

long long ShardedTally(
    long long n, Rng& root, const Options& options,
    const std::function<long long(long long, long long, Rng&)>& counter) {
  const int shards = ResolveShardCount(n, options);
  std::vector<long long> tallies(std::max(shards, 0), 0);
  ShardedRun(n, root, options,
             [&](int shard, long long lo, long long hi, Rng& rng) {
               tallies[shard] = counter(lo, hi, rng);
             });
  long long total = 0;
  for (long long t : tallies) total += t;
  return total;
}

CollectionResult RunCollection(const fo::FrequencyOracle& oracle,
                               const std::vector<int>& values, Rng& root,
                               const Options& options) {
  LDPR_REQUIRE(!values.empty(), "RunCollection requires >= 1 value");
  const long long n = static_cast<long long>(values.size());
  const int shards = ResolveShardCount(n, options);
  std::vector<std::unique_ptr<fo::Aggregator>> parts(shards);
  ShardedRun(n, root, options,
             [&](int shard, long long lo, long long hi, Rng& rng) {
               auto agg = oracle.MakeAggregator();
               if (options.mode == Mode::kClosedForm) {
                 std::vector<long long> hist(oracle.k(), 0);
                 for (long long u = lo; u < hi; ++u) {
                   const int v = values[u];
                   LDPR_REQUIRE(v >= 0 && v < oracle.k(),
                                "value " << v << " outside [0, " << oracle.k()
                                         << ")");
                   ++hist[v];
                 }
                 agg->AccumulateHistogram(hist, rng);
               } else {
                 agg->AccumulateValues(values.data() + lo,
                                       static_cast<std::size_t>(hi - lo), rng);
               }
               parts[shard] = std::move(agg);
             });
  for (int s = 1; s < shards; ++s) parts[0]->Merge(*parts[s]);
  CollectionResult result;
  result.counts = parts[0]->counts();
  result.n = parts[0]->n();
  result.estimate = parts[0]->Estimate();
  return result;
}

}  // namespace ldpr::sim
