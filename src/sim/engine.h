#ifndef LDPR_SIM_ENGINE_H_
#define LDPR_SIM_ENGINE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "core/check.h"
#include "core/parallel.h"
#include "core/rng.h"
#include "data/dataset.h"
#include "fo/frequency_oracle.h"

namespace ldpr::sim {

/// How RunCollection simulates the n clients.
enum class Mode {
  /// Per-user randomization fused with support counting; per shard stream
  /// this is bit-identical to scalar Randomize + AccumulateSupport calls.
  kStreaming,
  /// Per-shard closed-form sampling of the aggregate support counts from the
  /// shard's true-value histogram — O(k) RNG draws per shard instead of
  /// O(users). Per-cell distribution-exact; see
  /// fo::Aggregator::AccumulateHistogram for the cross-cell caveat.
  kClosedForm,
};

/// Knobs for the sharded simulation engine. Defaults reproduce one result
/// for one seed regardless of the machine: shard boundaries and shard RNG
/// streams depend only on n (never on the thread count or LDPR_THREADS).
struct Options {
  int threads = 0;     ///< ParallelFor workers; 0 = LDPR_THREADS / cores.
  int num_shards = 0;  ///< 0 = AutoShardCount(n).
  Mode mode = Mode::kStreaming;
};

/// Deterministic shard count for n users — a function of n only.
int AutoShardCount(long long n);

/// options.num_shards, or AutoShardCount(n) when unset.
int ResolveShardCount(long long n, const Options& options);

/// Runs fn(shard, begin, end, rng) over ResolveShardCount(n, options)
/// contiguous user ranges in parallel. Shard s draws from an independent
/// stream Forked off one Split of `root`, so a fixed root seed gives
/// identical results under any thread count; `root` advances by exactly one
/// Split per call, so successive ShardedRun calls see fresh streams.
void ShardedRun(
    long long n, Rng& root, const Options& options,
    const std::function<void(int, long long, long long, Rng&)>& fn);

/// Runs fn(cell) for every cell in [0, num_cells) across the worker pool.
/// The experiment layer's GridRunner uses this to parallelize (grid-point,
/// trial) cells: fn must derive all of its randomness from the cell index
/// (deterministic per-cell RNG construction), so results are independent of
/// scheduling. Nested ShardedRun/ParallelFor calls inside fn run inline
/// (core/parallel's nesting guard), so cell-level parallelism composes with
/// per-user sharding without oversubscribing the machine.
void RunCells(long long num_cells, const std::function<void(long long)>& fn,
              int threads = 0);

/// Sharded counting sweep: runs counter(begin, end, rng) per shard (same
/// stream/sharding rules as ShardedRun) and returns the summed tallies.
/// Collapses the tally-vector + merge boilerplate of Monte-Carlo drivers.
long long ShardedTally(
    long long n, Rng& root, const Options& options,
    const std::function<long long(long long, long long, Rng&)>& counter);

/// Outcome of one simulated collection round.
struct CollectionResult {
  std::vector<long long> counts;  ///< merged support counts, size k
  long long n = 0;                ///< number of simulated reports
  std::vector<double> estimate;   ///< Eq. (2) frequency estimate
};

/// Simulates one eps-LDP collection of `values` through `oracle`: users are
/// sharded across the worker pool, each shard accumulates into its own
/// fo::Aggregator on an independent RNG stream, and the shard aggregators
/// are merged before estimating. No per-user Report vector is materialized
/// in either mode.
CollectionResult RunCollection(const fo::FrequencyOracle& oracle,
                               const std::vector<int>& values, Rng& root,
                               const Options& options = {});

/// Simulates a multidimensional collection with solution S (multidim::Spl,
/// Smp, RsFd, RsRfd): shards the dataset's users, accumulates one
/// S::StreamAggregator per shard, merges, and estimates. Streaming only —
/// the multidim estimators need per-user attribute sampling. Returns the
/// per-attribute frequency estimates.
template <typename Solution>
std::vector<std::vector<double>> RunMultidim(const Solution& solution,
                                             const data::Dataset& dataset,
                                             Rng& root,
                                             const Options& options = {}) {
  using Agg = typename Solution::StreamAggregator;
  const long long n = dataset.n();
  LDPR_REQUIRE(n >= 1, "RunMultidim requires a non-empty dataset");
  const int shards = ResolveShardCount(n, options);
  std::vector<std::unique_ptr<Agg>> parts(shards);
  ShardedRun(n, root, options,
             [&](int shard, long long lo, long long hi, Rng& rng) {
               auto agg = std::make_unique<Agg>(solution);
               std::vector<int> record(dataset.d());
               for (long long user = lo; user < hi; ++user) {
                 for (int j = 0; j < dataset.d(); ++j) {
                   record[j] = dataset.value(static_cast<int>(user), j);
                 }
                 agg->AccumulateRecord(record, rng);
               }
               parts[shard] = std::move(agg);
             });
  for (int s = 1; s < shards; ++s) parts[0]->Merge(*parts[s]);
  return parts[0]->Estimate();
}

}  // namespace ldpr::sim

#endif  // LDPR_SIM_ENGINE_H_
