#include "attack/aif.h"

#include <gtest/gtest.h>

#include "core/check.h"
#include "data/priors.h"
#include "data/synthetic.h"
#include "multidim/rsrfd.h"

namespace ldpr::attack {
namespace {

ml::GbdtConfig FastGbdt() {
  ml::GbdtConfig config;
  config.num_rounds = 12;
  config.max_depth = 5;
  return config;
}

AifConfig MakeConfig(AifModel model) {
  AifConfig config;
  config.model = model;
  config.synthetic_multiplier = 1.0;
  config.compromised_fraction = 0.3;
  config.gbdt = FastGbdt();
  return config;
}

MultidimClient ClientOf(const multidim::RsFd& rsfd) {
  return [&rsfd](const std::vector<int>& rec, Rng& r) {
    return rsfd.RandomizeUser(rec, r);
  };
}

MultidimEstimator EstimatorOf(const multidim::RsFd& rsfd) {
  return [&rsfd](const std::vector<multidim::MultidimReport>& reps) {
    return rsfd.Estimate(reps);
  };
}

TEST(AifTest, ModelNames) {
  EXPECT_STREQ(AifModelName(AifModel::kNk), "NK");
  EXPECT_STREQ(AifModelName(AifModel::kPk), "PK");
  EXPECT_STREQ(AifModelName(AifModel::kHm), "HM");
}

TEST(AifTest, EncodeFeaturesGrr) {
  multidim::MultidimReport rep;
  rep.values = {3, 1, 4};
  auto f = EncodeFeatures(rep, {5, 2, 6});
  EXPECT_EQ(f, (std::vector<int>{3, 1, 4}));
}

TEST(AifTest, EncodeFeaturesUe) {
  multidim::MultidimReport rep;
  rep.bits = {{1, 0}, {0, 1, 1}};
  auto f = EncodeFeatures(rep, {2, 3});
  EXPECT_EQ(f, (std::vector<int>{1, 0, 0, 1, 1}));
  EXPECT_THROW(EncodeFeatures(rep, {2, 4}), InvalidArgumentError);
}

TEST(AifTest, UeZVariantIsHighlyVulnerableAtHighEpsilon) {
  // The paper's headline AIF finding: RS+FD[SUE-z] approaches 100% AIF-ACC
  // at eps = 10 because fake columns are near-empty while the sampled column
  // carries a bit with probability p' ~ 1.
  data::Dataset ds = data::AcsEmploymentLike(1, 0.2);
  multidim::RsFd rsfd(multidim::RsFdVariant::kSueZ, ds.domain_sizes(), 10.0);
  Rng rng(1);
  AifResult result = RunAifAttack(ds, ClientOf(rsfd), EstimatorOf(rsfd),
                                  MakeConfig(AifModel::kNk), rng);
  EXPECT_GT(result.aif_acc_percent, 80.0);
  EXPECT_NEAR(result.baseline_percent, 100.0 / 18.0, 1e-9);
}

TEST(AifTest, GrrVariantBeatsBaselineOnSkewedData) {
  data::Dataset ds = data::AcsEmploymentLike(2, 0.2);
  multidim::RsFd rsfd(multidim::RsFdVariant::kGrr, ds.domain_sizes(), 8.0);
  Rng rng(2);
  AifResult result = RunAifAttack(ds, ClientOf(rsfd), EstimatorOf(rsfd),
                                  MakeConfig(AifModel::kNk), rng);
  // Paper: ~2-20x over the 1/d baseline.
  EXPECT_GT(result.aif_acc_percent, 1.5 * result.baseline_percent);
}

TEST(AifTest, PkModelUsesCompromisedUsers) {
  data::Dataset ds = data::AcsEmploymentLike(3, 0.2);
  multidim::RsFd rsfd(multidim::RsFdVariant::kSueZ, ds.domain_sizes(), 8.0);
  Rng rng(3);
  AifConfig config = MakeConfig(AifModel::kPk);
  AifResult result =
      RunAifAttack(ds, ClientOf(rsfd), EstimatorOf(rsfd), config, rng);
  // Test set excludes the 30% compromised users.
  EXPECT_EQ(result.test_n, ds.n() - static_cast<int>(0.3 * ds.n() + 0.5));
  EXPECT_GT(result.aif_acc_percent, 2.0 * result.baseline_percent);
}

TEST(AifTest, HybridModelCombinesBoth) {
  data::Dataset ds = data::AcsEmploymentLike(4, 0.2);
  multidim::RsFd rsfd(multidim::RsFdVariant::kSueZ, ds.domain_sizes(), 8.0);
  Rng rng(4);
  AifConfig config = MakeConfig(AifModel::kHm);
  AifResult result =
      RunAifAttack(ds, ClientOf(rsfd), EstimatorOf(rsfd), config, rng);
  const int npk = static_cast<int>(0.3 * ds.n() + 0.5);
  EXPECT_EQ(result.test_n, ds.n() - npk);
  EXPECT_EQ(result.train_n, npk + ds.n());  // compromised + 1n synthetic
  EXPECT_GT(result.aif_acc_percent, 2.0 * result.baseline_percent);
}

TEST(AifTest, UniformDataDefeatsTheAttack) {
  // Nursery-like data: uniform marginals make real and fake values
  // indistinguishable for GRR/UE-r fakes (paper Appendix D).
  data::Dataset ds = data::NurseryLike(5, 0.3);
  multidim::RsFd rsfd(multidim::RsFdVariant::kGrr, ds.domain_sizes(), 8.0);
  Rng rng(5);
  AifResult result = RunAifAttack(ds, ClientOf(rsfd), EstimatorOf(rsfd),
                                  MakeConfig(AifModel::kNk), rng);
  EXPECT_LT(result.aif_acc_percent, 2.0 * result.baseline_percent);
}

TEST(AifTest, RsRfdCountermeasureSuppressesTheAttack) {
  // Section 5.2.3: realistic fakes push AIF-ACC back toward the baseline.
  data::Dataset ds = data::AcsEmploymentLike(6, 0.2);
  Rng prior_rng(60);
  // The best-case countermeasure: exact priors (perfect expert knowledge).
  // The Laplace-noised "Correct" recipe is exercised by the fig06 bench; at
  // this test's reduced scale its residual prior mismatch would make the
  // comparison too noisy to assert a strict inequality on.
  auto priors =
      data::BuildPriors(ds, data::PriorKind::kTrueMarginals, prior_rng);
  multidim::RsRfd rsrfd(multidim::RsRfdVariant::kGrr, ds.domain_sizes(), 8.0,
                        priors);
  multidim::RsFd rsfd(multidim::RsFdVariant::kGrr, ds.domain_sizes(), 8.0);

  MultidimClient rfd_client = [&rsrfd](const std::vector<int>& rec, Rng& r) {
    return rsrfd.RandomizeUser(rec, r);
  };
  MultidimEstimator rfd_estimator =
      [&rsrfd](const std::vector<multidim::MultidimReport>& reps) {
        return rsrfd.Estimate(reps);
      };

  Rng rng1(6), rng2(7);
  AifResult with_cm = RunAifAttack(ds, rfd_client, rfd_estimator,
                                   MakeConfig(AifModel::kNk), rng1);
  AifResult without_cm = RunAifAttack(ds, ClientOf(rsfd), EstimatorOf(rsfd),
                                      MakeConfig(AifModel::kNk), rng2);
  EXPECT_LT(with_cm.aif_acc_percent, without_cm.aif_acc_percent);
  EXPECT_LT(with_cm.aif_acc_percent, 2.0 * with_cm.baseline_percent);
}

TEST(AifTest, NkPredictSampledAttributesShape) {
  data::Dataset ds = data::NurseryLike(8, 0.1);
  multidim::RsFd rsfd(multidim::RsFdVariant::kGrr, ds.domain_sizes(), 4.0);
  Rng rng(8);
  std::vector<multidim::MultidimReport> reports;
  for (int i = 0; i < ds.n(); ++i) {
    reports.push_back(rsfd.RandomizeUser(ds.Record(i), rng));
  }
  auto preds = NkPredictSampledAttributes(
      reports, ClientOf(rsfd), EstimatorOf(rsfd), ds.domain_sizes(), 1.0,
      FastGbdt(), rng);
  ASSERT_EQ(static_cast<int>(preds.size()), ds.n());
  for (int p : preds) {
    EXPECT_GE(p, 0);
    EXPECT_LT(p, ds.d());
  }
}

TEST(AifTest, Validation) {
  data::Dataset ds = data::NurseryLike(9, 0.05);
  multidim::RsFd rsfd(multidim::RsFdVariant::kGrr, ds.domain_sizes(), 4.0);
  Rng rng(9);
  AifConfig config = MakeConfig(AifModel::kPk);
  config.compromised_fraction = 0.0;
  EXPECT_THROW(
      RunAifAttack(ds, ClientOf(rsfd), EstimatorOf(rsfd), config, rng),
      InvalidArgumentError);
  config = MakeConfig(AifModel::kNk);
  config.synthetic_multiplier = 0.0;
  EXPECT_THROW(
      RunAifAttack(ds, ClientOf(rsfd), EstimatorOf(rsfd), config, rng),
      InvalidArgumentError);
}

}  // namespace
}  // namespace ldpr::attack
