#include "attack/bayes_adversary.h"

#include <cmath>

#include <gtest/gtest.h>

#include "attack/plausible_deniability.h"
#include "core/check.h"
#include "core/sampling.h"
#include "data/priors.h"
#include "data/synthetic.h"
#include "fo/factory.h"
#include "ml/ml_metrics.h"

namespace ldpr::attack {
namespace {

/// Accuracy of an attacker functor over `trials` draws from `value_dist`.
template <typename Predict>
double AttackAcc(const fo::FrequencyOracle& oracle,
                 const CategoricalSampler& value_dist, Predict predict,
                 int trials, Rng& rng) {
  long long correct = 0;
  for (int t = 0; t < trials; ++t) {
    const int v = value_dist.Sample(rng);
    fo::Report r = oracle.Randomize(v, rng);
    if (predict(r, rng) == v) ++correct;
  }
  return static_cast<double>(correct) / trials;
}

class BayesAttackerTest : public ::testing::TestWithParam<fo::Protocol> {};

TEST_P(BayesAttackerTest, UniformPriorMatchesHeuristicAttack) {
  const fo::Protocol protocol = GetParam();
  const int k = 12;
  const double eps = 2.0;
  auto oracle = fo::MakeOracle(protocol, k, eps);
  BayesAttacker bayes(*oracle);
  CategoricalSampler uniform(std::vector<double>(k, 1.0));
  Rng rng(1);

  const int trials = 40000;
  double heuristic = AttackAcc(
      *oracle, uniform,
      [&](const fo::Report& r, Rng& g) { return oracle->AttackPredict(r, g); },
      trials, rng);
  double bayesian = AttackAcc(
      *oracle, uniform,
      [&](const fo::Report& r, Rng& g) { return bayes.Predict(r, g); },
      trials, rng);
  // With a uniform prior, the Bayes rule coincides with the Section 3.2.1
  // heuristics (up to identical tie-breaking randomness).
  EXPECT_NEAR(bayesian, heuristic, 0.02) << fo::ProtocolName(protocol);
}

TEST_P(BayesAttackerTest, InformativePriorDominatesHeuristic) {
  const fo::Protocol protocol = GetParam();
  const int k = 12;
  const double eps = 1.0;  // strong noise: the prior matters
  auto oracle = fo::MakeOracle(protocol, k, eps);
  std::vector<double> skew = ZipfDistribution(k, 2.0);
  BayesAttacker bayes(*oracle, skew);
  CategoricalSampler value_dist(skew);
  Rng rng(2);

  const int trials = 40000;
  double heuristic = AttackAcc(
      *oracle, value_dist,
      [&](const fo::Report& r, Rng& g) { return oracle->AttackPredict(r, g); },
      trials, rng);
  double bayesian = AttackAcc(
      *oracle, value_dist,
      [&](const fo::Report& r, Rng& g) { return bayes.Predict(r, g); },
      trials, rng);
  EXPECT_GE(bayesian, heuristic - 0.01) << fo::ProtocolName(protocol);
  // Under heavy noise the prior should yield a clear improvement.
  EXPECT_GT(bayesian, heuristic + 0.03) << fo::ProtocolName(protocol);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, BayesAttackerTest,
                         ::testing::ValuesIn(fo::AllProtocols()),
                         [](const ::testing::TestParamInfo<fo::Protocol>& i) {
                           return fo::ProtocolName(i.param);
                         });

TEST(BayesAttackerTest, Validation) {
  auto oracle = fo::MakeOracle(fo::Protocol::kGrr, 4, 1.0);
  EXPECT_THROW(BayesAttacker(*oracle, {1.0, 2.0}), InvalidArgumentError);
  BayesAttacker bayes(*oracle);
  fo::Report r;
  r.value = 2;
  EXPECT_THROW(bayes.LogLikelihood(r, 4), InvalidArgumentError);
}

TEST(BayesAttackerTest, GrrLikelihoodValues) {
  auto oracle = fo::MakeOracle(fo::Protocol::kGrr, 4, 1.0);
  BayesAttacker bayes(*oracle);
  fo::Report r;
  r.value = 2;
  EXPECT_NEAR(bayes.LogLikelihood(r, 2), std::log(oracle->p()), 1e-12);
  EXPECT_NEAR(bayes.LogLikelihood(r, 0), std::log(oracle->q()), 1e-12);
  Rng rng(3);
  EXPECT_EQ(bayes.Predict(r, rng), 2);
}

// ---------------------------------------------------------------------------
// BayesAifAttacker
// ---------------------------------------------------------------------------

template <typename Protocol>
double BayesAifAcc(const data::Dataset& ds, const Protocol& protocol,
                   Rng& rng) {
  std::vector<multidim::MultidimReport> reports;
  std::vector<int> truth;
  reports.reserve(ds.n());
  for (int i = 0; i < ds.n(); ++i) {
    reports.push_back(protocol.RandomizeUser(ds.Record(i), rng));
    truth.push_back(reports.back().sampled_attribute);
  }
  BayesAifAttacker attacker(protocol, protocol.Estimate(reports));
  return ml::Accuracy(truth, attacker.PredictBatch(reports));
}

TEST(BayesAifTest, BeatsBaselineOnSkewedDataGrr) {
  data::Dataset ds = data::AcsEmploymentLike(10, 0.3);
  multidim::RsFd rsfd(multidim::RsFdVariant::kGrr, ds.domain_sizes(), 8.0);
  Rng rng(4);
  double acc = BayesAifAcc(ds, rsfd, rng);
  EXPECT_GT(acc, 2.0 / ds.d());  // >= 2x the 1/d baseline
}

TEST(BayesAifTest, NearPerfectOnSueZAtHighEpsilon) {
  data::Dataset ds = data::AcsEmploymentLike(11, 0.2);
  multidim::RsFd rsfd(multidim::RsFdVariant::kSueZ, ds.domain_sizes(), 10.0);
  Rng rng(5);
  EXPECT_GT(BayesAifAcc(ds, rsfd, rng), 0.9);
}

TEST(BayesAifTest, NearBaselineOnUniformData) {
  data::Dataset ds = data::NurseryLike(12, 0.3);
  multidim::RsFd rsfd(multidim::RsFdVariant::kGrr, ds.domain_sizes(), 8.0);
  Rng rng(6);
  double acc = BayesAifAcc(ds, rsfd, rng);
  EXPECT_LT(acc, 2.0 / ds.d());
}

TEST(BayesAifTest, RsRfdWithTruePriorsSuppressesTheAttack) {
  data::Dataset ds = data::AcsEmploymentLike(13, 0.3);
  Rng prior_rng(7);
  auto priors = data::BuildPriors(ds, data::PriorKind::kTrueMarginals,
                                  prior_rng);
  multidim::RsRfd rsrfd(multidim::RsRfdVariant::kGrr, ds.domain_sizes(), 8.0,
                        priors);
  multidim::RsFd rsfd(multidim::RsFdVariant::kGrr, ds.domain_sizes(), 8.0);
  Rng rng1(8), rng2(9);
  double with_cm = BayesAifAcc(ds, rsrfd, rng1);
  double without_cm = BayesAifAcc(ds, rsfd, rng2);
  EXPECT_LT(with_cm, without_cm);
  EXPECT_LT(with_cm, 1.6 / ds.d());
}

TEST(BayesAifTest, UeRVariantWorksToo) {
  data::Dataset ds = data::AcsEmploymentLike(14, 0.2);
  multidim::RsFd rsfd(multidim::RsFdVariant::kOueR, ds.domain_sizes(), 8.0);
  Rng rng(10);
  double acc = BayesAifAcc(ds, rsfd, rng);
  EXPECT_GT(acc, 1.3 / ds.d());
}

TEST(BayesAifTest, Validation) {
  multidim::RsFd rsfd(multidim::RsFdVariant::kGrr, {4, 5}, 1.0);
  std::vector<std::vector<double>> wrong_size(1);
  EXPECT_THROW(BayesAifAttacker(rsfd, wrong_size), InvalidArgumentError);
  std::vector<std::vector<double>> marginals{{0.5, 0.3, 0.1, 0.1},
                                             {0.2, 0.2, 0.2, 0.2, 0.2}};
  BayesAifAttacker attacker(rsfd, marginals);
  multidim::MultidimReport bad;
  bad.values = {1};
  EXPECT_THROW(attacker.PredictSampledAttribute(bad), InvalidArgumentError);
}

}  // namespace
}  // namespace ldpr::attack
