// Channel-level tests: the AttackChannel abstraction used by the
// multi-survey profiling simulations, across all three privacy models
// (eps-LDP, alpha-PIE, metric-LDP).

#include <gtest/gtest.h>

#include "attack/profiling.h"
#include "core/check.h"
#include "fo/metric_ldp.h"

namespace ldpr::attack {
namespace {

TEST(MetricLdpChannelTest, PredictionsInDomain) {
  auto channel = MakeMetricLdpChannel({9, 4}, 1.0);
  Rng rng(1);
  for (int t = 0; t < 500; ++t) {
    int p0 = channel->ReportAndPredict(4, 0, rng);
    int p1 = channel->ReportAndPredict(2, 1, rng);
    EXPECT_GE(p0, 0);
    EXPECT_LT(p0, 9);
    EXPECT_GE(p1, 0);
    EXPECT_LT(p1, 4);
  }
  EXPECT_THROW(channel->ReportAndPredict(0, 2, rng), InvalidArgumentError);
}

TEST(MetricLdpChannelTest, AccuracyMatchesMechanismDiagonal) {
  const int k = 16;
  const double eps = 2.0;
  auto channel = MakeMetricLdpChannel({k}, eps);
  fo::MetricLdp reference(k, eps);
  Rng rng(2);
  long long correct = 0;
  const int trials = 60000;
  for (int t = 0; t < trials; ++t) {
    const int v = static_cast<int>(rng.UniformInt(k));
    correct += (channel->ReportAndPredict(v, 0, rng) == v);
  }
  EXPECT_NEAR(static_cast<double>(correct) / trials,
              reference.ExpectedAttackAcc(), 0.01);
}

TEST(MetricLdpChannelTest, LeaksMoreThanGrrAtSameEpsilonOnLargeDomain) {
  const int k = 74;
  const double eps = 2.0;
  auto metric = MakeMetricLdpChannel({k}, eps);
  auto grr = MakeLdpChannel(fo::Protocol::kGrr, {k}, eps);
  Rng rng(3);
  long long metric_correct = 0, grr_correct = 0;
  const int trials = 40000;
  for (int t = 0; t < trials; ++t) {
    const int v = static_cast<int>(rng.UniformInt(k));
    metric_correct += (metric->ReportAndPredict(v, 0, rng) == v);
    grr_correct += (grr->ReportAndPredict(v, 0, rng) == v);
  }
  EXPECT_GT(metric_correct, 2 * grr_correct);
}

TEST(MetricLdpChannelTest, ErrorsAreMetricallyLocal) {
  const int k = 32;
  auto channel = MakeMetricLdpChannel({k}, 1.0);
  Rng rng(4);
  double mean_abs_err = 0.0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    const int v = 16;
    mean_abs_err += std::abs(channel->ReportAndPredict(v, 0, rng) - v);
  }
  mean_abs_err /= trials;
  // A uniform wrong guess would average ~k/4 = 8 here; metric-LDP errors
  // cluster around the true value.
  EXPECT_LT(mean_abs_err, 3.0);
}

TEST(ChannelProfilingTest, MetricLdpProfilingRunsEndToEnd) {
  data::Dataset ds({5, 7, 3}, {});
  Rng gen(5);
  for (int i = 0; i < 500; ++i) {
    ds.AddRecord({static_cast<int>(gen.UniformInt(5)),
                  static_cast<int>(gen.UniformInt(7)),
                  static_cast<int>(gen.UniformInt(3))});
  }
  Rng rng(6);
  SurveyPlan plan = MakeSurveyPlan(3, 3, rng);
  auto channel = MakeMetricLdpChannel(ds.domain_sizes(), 4.0);
  auto snapshots = SimulateSmpProfiling(ds, *channel, plan,
                                        PrivacyMetricMode::kUniform, rng);
  ASSERT_EQ(snapshots.size(), 3u);
  for (const auto& [a, v] : snapshots.back()[0]) {
    EXPECT_GE(v, 0);
    EXPECT_LT(v, ds.domain_size(a));
  }
}

}  // namespace
}  // namespace ldpr::attack
