// Tests for the homogeneity attack (attack/homogeneity): exact behaviour on
// hand-built populations where the shortlists are fully determined, the
// l-diversity and homogeneity statistics, the baseline, validation, and an
// end-to-end run on census-shaped data where perfect profiles must beat the
// modal-guess baseline.

#include <vector>

#include <gtest/gtest.h>

#include "attack/homogeneity.h"
#include "attack/profiling.h"
#include "core/check.h"
#include "data/synthetic.h"
#include "fo/factory.h"

namespace ldpr::attack {
namespace {

// Population with two quasi-identifier attributes (4 x 2) and one sensitive
// attribute (k = 3). Records are constructed so each (q1, q2) equivalence
// class is homogeneous in the sensitive value.
data::Dataset MakeHomogeneousPopulation() {
  data::Dataset ds({4, 2, 3}, {"q1", "q2", "s"});
  for (int q1 = 0; q1 < 4; ++q1) {
    for (int q2 = 0; q2 < 2; ++q2) {
      const int s = (q1 + q2) % 3;  // class-determined sensitive value
      for (int copy = 0; copy < 5; ++copy) ds.AddRecord({q1, q2, s});
    }
  }
  return ds;
}

std::vector<Profile> PerfectProfiles(const data::Dataset& ds,
                                     const std::vector<int>& attrs) {
  std::vector<Profile> profiles(ds.n());
  for (int i = 0; i < ds.n(); ++i) {
    for (int j : attrs) profiles[i].emplace_back(j, ds.value(i, j));
  }
  return profiles;
}

TEST(HomogeneityTest, PerfectProfilesOnHomogeneousClassesAlwaysWin) {
  data::Dataset ds = MakeHomogeneousPopulation();
  auto profiles = PerfectProfiles(ds, {0, 1});
  std::vector<bool> bk(3, true);
  HomogeneityConfig config;
  config.top_k = 5;  // exactly one equivalence class
  config.max_targets = 0;
  Rng rng(1);
  HomogeneityResult result =
      HomogeneityAttack(profiles, ds, bk, /*sensitive_attribute=*/2, config,
                        rng);
  EXPECT_DOUBLE_EQ(result.inference_acc_percent, 100.0);
  EXPECT_DOUBLE_EQ(result.homogeneous_fraction, 1.0);
  EXPECT_DOUBLE_EQ(result.homogeneous_inference_acc_percent, 100.0);
  EXPECT_DOUBLE_EQ(result.mean_l_diversity, 1.0);
  EXPECT_EQ(result.num_targets, ds.n());
  // Sensitive values are near-balanced; baseline well below 100.
  EXPECT_LT(result.baseline_percent, 50.0);
}

TEST(HomogeneityTest, DiverseClassesDefeatTheAttack) {
  // Every (q1) class contains all 3 sensitive values equally: 3-diverse.
  data::Dataset ds({2, 3}, {"q1", "s"});
  for (int q1 = 0; q1 < 2; ++q1) {
    for (int s = 0; s < 3; ++s) {
      for (int copy = 0; copy < 4; ++copy) ds.AddRecord({q1, s});
    }
  }
  auto profiles = PerfectProfiles(ds, {0});
  std::vector<bool> bk(2, true);
  HomogeneityConfig config;
  config.top_k = 12;  // the whole class
  config.max_targets = 0;
  Rng rng(2);
  HomogeneityResult result = HomogeneityAttack(profiles, ds, bk, 1, config,
                                               rng);
  // Modal vote within a perfectly balanced class is a 1-in-3 guess.
  EXPECT_NEAR(result.inference_acc_percent, 100.0 / 3.0, 1e-9);
  EXPECT_DOUBLE_EQ(result.homogeneous_fraction, 0.0);
  EXPECT_DOUBLE_EQ(result.mean_l_diversity, 3.0);
}

TEST(HomogeneityTest, SensitiveAttributeNeverMatchesEvenIfProfiled) {
  // Profiles carry the sensitive attribute; matching must ignore it: with
  // no other evidence all records tie, so the shortlist is a random top-k
  // and inference falls to the modal baseline, not to 100%.
  data::Dataset ds({2, 5});
  Rng data_rng(3);
  for (int i = 0; i < 400; ++i) {
    ds.AddRecord({static_cast<int>(data_rng.UniformInt(2)),
                  static_cast<int>(data_rng.UniformInt(5))});
  }
  std::vector<Profile> profiles(ds.n());
  for (int i = 0; i < ds.n(); ++i) {
    profiles[i].emplace_back(1, ds.value(i, 1));  // only the sensitive attr
  }
  std::vector<bool> bk(2, true);
  HomogeneityConfig config;
  config.top_k = 10;
  config.max_targets = 0;
  Rng rng(4);
  HomogeneityResult result = HomogeneityAttack(profiles, ds, bk, 1, config,
                                               rng);
  // Uniform sensitive attribute: random shortlists give ~ modal-share
  // accuracy (~20-30%), far from the 100% a leak would produce.
  EXPECT_LT(result.inference_acc_percent, 45.0);
}

TEST(HomogeneityTest, RejectsInvalidArguments) {
  data::Dataset ds({2, 2});
  ds.AddRecord({0, 0});
  std::vector<Profile> profiles(1);
  std::vector<bool> bk(2, true);
  HomogeneityConfig config;
  Rng rng(5);
  EXPECT_THROW(HomogeneityAttack(profiles, ds, bk, 2, config, rng),
               InvalidArgumentError);
  EXPECT_THROW(HomogeneityAttack(profiles, ds, {true}, 1, config, rng),
               InvalidArgumentError);
  config.top_k = 0;
  EXPECT_THROW(HomogeneityAttack(profiles, ds, bk, 1, config, rng),
               InvalidArgumentError);
  config.top_k = 5;
  config.agreement_threshold = 0.0;
  EXPECT_THROW(HomogeneityAttack(profiles, ds, bk, 1, config, rng),
               InvalidArgumentError);
  std::vector<Profile> misaligned(2);
  config.agreement_threshold = 0.8;
  EXPECT_THROW(HomogeneityAttack(misaligned, ds, bk, 1, config, rng),
               InvalidArgumentError);
}

TEST(HomogeneityTest, EndToEndHomogeneousSubsetLeaksOnCensusData) {
  // LDP profiles (GRR at a generous eps) on 5 quasi-identifiers, inferring
  // a 6th attribute homogeneity-style. On realistically correlated census
  // data the *overall* modal vote only edges out the global-mode baseline,
  // but on the homogeneous shortlists — the targets the attacker actually
  // acts on — inference accuracy is decisively above it. This is the
  // paper's Section 6 observation that LDP deployments "still allow a small
  // portion of users to leak more information than others".
  data::Dataset ds = data::AdultLike(21, 0.05);
  const std::vector<int> attrs = {0, 1, 2, 3, 4};
  const int sensitive = 7;  // binary, ~65% modal share
  Rng rng(6);
  auto channel = MakeLdpChannel(fo::Protocol::kGrr, ds.domain_sizes(), 8.0);
  std::vector<Profile> profiles(ds.n());
  for (int i = 0; i < ds.n(); ++i) {
    for (int j : attrs) {
      profiles[i].emplace_back(
          j, channel->ReportAndPredict(ds.value(i, j), j, rng));
    }
  }
  std::vector<bool> bk(ds.d(), true);
  HomogeneityConfig config;
  config.top_k = 10;
  config.max_targets = 1500;
  HomogeneityResult result =
      HomogeneityAttack(profiles, ds, bk, sensitive, config, rng);
  // Overall: at least baseline-level (the vote never does much worse).
  EXPECT_GT(result.inference_acc_percent, result.baseline_percent - 3.0);
  // A meaningful fraction of shortlists is homogeneous, and there the
  // attacker is far above the global-mode guess.
  EXPECT_GT(result.homogeneous_fraction, 0.08);
  EXPECT_GT(result.homogeneous_inference_acc_percent,
            result.baseline_percent + 10.0);
}

}  // namespace
}  // namespace ldpr::attack
