// Tests for the pool inference attack (attack/pool): the per-protocol
// support likelihood ratios against hand-derived values, exact posterior
// arithmetic on single GRR reports, convergence of the posterior with
// repeated reports, partition validation, and an accuracy sweep across all
// five oracles showing the attack beats the baseline and grows with the
// number of collections.

#include <algorithm>
#include <cmath>
#include <map>
#include <string>
#include <tuple>
#include <utility>

#include <gtest/gtest.h>

#include "attack/pool.h"
#include "core/check.h"
#include "fo/factory.h"
#include "fo/olh.h"
#include "fo/ss.h"

namespace ldpr::attack {
namespace {

TEST(PoolLikelihoodRatioTest, GrrIsPOverQ) {
  auto oracle = fo::MakeOracle(fo::Protocol::kGrr, 8, 1.0);
  // p/q = e^eps for GRR — the LDP bound held with equality.
  EXPECT_NEAR(SupportLikelihoodRatio(*oracle), std::exp(1.0), 1e-12);
}

TEST(PoolLikelihoodRatioTest, OlhIsEEpsilonInReducedDomain) {
  auto oracle = fo::MakeOracle(fo::Protocol::kOlh, 100, 2.0);
  // p'/q' = e^eps inside the reduced domain.
  EXPECT_NEAR(SupportLikelihoodRatio(*oracle), std::exp(2.0), 1e-12);
}

TEST(PoolLikelihoodRatioTest, SsHandDerived) {
  const int k = 12;
  const double eps = 1.0;
  fo::Ss ss(k, eps);
  const double p = ss.p();
  const int omega = ss.omega();
  EXPECT_NEAR(SupportLikelihoodRatio(ss),
              p * (k - omega) / ((1.0 - p) * omega), 1e-12);
  EXPECT_GT(SupportLikelihoodRatio(ss), 1.0);
}

TEST(PoolLikelihoodRatioTest, UeProtocols) {
  auto sue = fo::MakeOracle(fo::Protocol::kSue, 8, 2.0);
  // SUE: p = e/(e+1) with e = e^{eps/2}, q = 1-p -> ratio = (p/q)^2 = e^eps.
  EXPECT_NEAR(SupportLikelihoodRatio(*sue), std::exp(2.0), 1e-9);
  auto oue = fo::MakeOracle(fo::Protocol::kOue, 8, 2.0);
  // OUE: p = 1/2, q = 1/(e^eps+1) -> ratio = e^eps.
  EXPECT_NEAR(SupportLikelihoodRatio(*oue), std::exp(2.0), 1e-9);
}

TEST(PoolAttackerTest, SingleGrrReportPosteriorByHand) {
  // k = 4, two pools {0,1} and {2,3}, one GRR report y = 0.
  // Likelihoods: pool 0 -> (rho + 1)/2, pool 1 -> (1 + 1)/2 = 1.
  const double eps = 1.0;
  auto oracle = fo::MakeOracle(fo::Protocol::kGrr, 4, eps);
  PoolInferenceAttacker attacker(*oracle, {{0, 1}, {2, 3}});
  fo::Report report;
  report.value = 0;
  auto posterior = attacker.Posterior({report});
  const double rho = std::exp(eps);
  const double l0 = (rho + 1.0) / 2.0;
  EXPECT_NEAR(posterior[0], l0 / (l0 + 1.0), 1e-12);
  EXPECT_NEAR(posterior[0] + posterior[1], 1.0, 1e-12);
  EXPECT_EQ(attacker.PredictPool({report}), 0);
}

TEST(PoolAttackerTest, EmptyReportListReturnsPrior) {
  auto oracle = fo::MakeOracle(fo::Protocol::kGrr, 4, 1.0);
  PoolInferenceAttacker uniform(*oracle, {{0, 1}, {2, 3}});
  auto posterior = uniform.Posterior({});
  EXPECT_NEAR(posterior[0], 0.5, 1e-12);

  PoolInferenceAttacker skewed(*oracle, {{0, 1}, {2, 3}}, {3.0, 1.0});
  auto skewed_posterior = skewed.Posterior({});
  EXPECT_NEAR(skewed_posterior[0], 0.75, 1e-12);
}

TEST(PoolAttackerTest, PosteriorConcentratesWithMoreReports) {
  const double eps = 1.0;
  auto oracle = fo::MakeOracle(fo::Protocol::kGrr, 8, eps);
  PoolInferenceAttacker attacker(*oracle, ContiguousPools(8, 2));
  Rng rng(3);
  // User in pool 0, drawing uniformly from {0..3}.
  std::vector<fo::Report> reports;
  for (int t = 0; t < 60; ++t) {
    reports.push_back(oracle->Randomize(static_cast<int>(rng.UniformInt(4)),
                                        rng));
  }
  const double post60 = attacker.Posterior(reports)[0];
  EXPECT_GT(post60, 0.95);
}

TEST(PoolAttackerTest, WithinPoolWeightsSharpenThePosterior) {
  // Pool 0 draws value 0 90% of the time. A weighted attacker watching
  // reports generated that way must out-perform the uniform-model attacker
  // on average log-posterior of the true pool.
  const double eps = 1.0;
  auto oracle = fo::MakeOracle(fo::Protocol::kGrr, 8, eps);
  PoolInferenceAttacker uniform_model(*oracle, ContiguousPools(8, 2));
  PoolInferenceAttacker weighted_model(*oracle, ContiguousPools(8, 2));
  weighted_model.SetWithinPoolWeights(0, {0.9, 0.1 / 3, 0.1 / 3, 0.1 / 3});

  Rng rng(8);
  double uniform_sum = 0.0, weighted_sum = 0.0;
  const int users = 400;
  for (int u = 0; u < users; ++u) {
    std::vector<fo::Report> reports;
    for (int t = 0; t < 10; ++t) {
      const int value =
          rng.Bernoulli(0.9) ? 0 : 1 + static_cast<int>(rng.UniformInt(3));
      reports.push_back(oracle->Randomize(value, rng));
    }
    uniform_sum += uniform_model.Posterior(reports)[0];
    weighted_sum += weighted_model.Posterior(reports)[0];
  }
  EXPECT_GT(weighted_sum / users, uniform_sum / users);
  EXPECT_GT(weighted_sum / users, 0.65);
}

TEST(PoolAttackerTest, WithinPoolWeightValidation) {
  auto oracle = fo::MakeOracle(fo::Protocol::kGrr, 4, 1.0);
  PoolInferenceAttacker attacker(*oracle, {{0, 1}, {2, 3}});
  EXPECT_THROW(attacker.SetWithinPoolWeights(2, {0.5, 0.5}),
               InvalidArgumentError);
  EXPECT_THROW(attacker.SetWithinPoolWeights(0, {0.5}),
               InvalidArgumentError);
  EXPECT_THROW(attacker.SetWithinPoolWeights(0, {1.0, 0.0}),
               InvalidArgumentError);
}

TEST(PoolAttackerTest, ValidatesPartition) {
  auto oracle = fo::MakeOracle(fo::Protocol::kGrr, 4, 1.0);
  using P = std::vector<std::vector<int>>;
  EXPECT_THROW(PoolInferenceAttacker(*oracle, P{{0, 1, 2, 3}}),
               InvalidArgumentError);  // one pool
  EXPECT_THROW(PoolInferenceAttacker(*oracle, P{{0, 1}, {1, 2, 3}}),
               InvalidArgumentError);  // overlap
  EXPECT_THROW(PoolInferenceAttacker(*oracle, P{{0, 1}, {2}}),
               InvalidArgumentError);  // not covering
  EXPECT_THROW(PoolInferenceAttacker(*oracle, P{{0, 1}, {2, 4}}),
               InvalidArgumentError);  // out of range
  EXPECT_THROW(PoolInferenceAttacker(*oracle, P{{0, 1}, {}, {2, 3}}),
               InvalidArgumentError);  // empty pool
  EXPECT_THROW(
      PoolInferenceAttacker(*oracle, P{{0, 1}, {2, 3}}, {1.0}),
      InvalidArgumentError);  // prior size mismatch
  EXPECT_THROW(
      PoolInferenceAttacker(*oracle, P{{0, 1}, {2, 3}}, {1.0, 0.0}),
      InvalidArgumentError);  // non-positive prior
}

TEST(PoolAttackerTest, ContiguousPoolsPartition) {
  auto pools = ContiguousPools(10, 3);
  ASSERT_EQ(pools.size(), 3u);
  int total = 0;
  for (const auto& pool : pools) total += static_cast<int>(pool.size());
  EXPECT_EQ(total, 10);
  EXPECT_THROW(ContiguousPools(4, 1), InvalidArgumentError);
  EXPECT_THROW(ContiguousPools(4, 5), InvalidArgumentError);
}

// Brute-force property check: the attacker's single-report pool posterior
// (built from the closed-form likelihood ratio rho) matches the exact Bayes
// posterior computed from the *empirical* report distributions Pr[y | pool].
// Reports are keyed by their full payload; OLH is excluded because its
// report space (fresh hash seed per report) never repeats.
class PoolPosteriorBruteForceTest
    : public ::testing::TestWithParam<fo::Protocol> {};

std::string ReportKey(const fo::Report& r) {
  std::string key;
  if (!r.bits.empty()) {
    for (auto b : r.bits) key += static_cast<char>('0' + b);
    return key;
  }
  if (!r.subset.empty()) {
    std::vector<int> sorted = r.subset;
    std::sort(sorted.begin(), sorted.end());
    for (int v : sorted) {
      key += std::to_string(v);
      key += ',';
    }
    return key;
  }
  return std::to_string(r.value);
}

TEST_P(PoolPosteriorBruteForceTest, MatchesEmpiricalBayes) {
  const fo::Protocol protocol = GetParam();
  const int k = 4;
  const double eps = 1.2;
  auto oracle = fo::MakeOracle(protocol, k, eps);
  const auto pools = ContiguousPools(k, 2);
  PoolInferenceAttacker attacker(*oracle, pools);

  // Empirical Pr[key | pool] from many simulated reports per pool, keeping
  // one representative Report per key.
  Rng rng(42 + static_cast<int>(protocol));
  const int trials = 400000;
  std::map<std::string, std::pair<double, double>> key_mass;  // per pool
  std::map<std::string, fo::Report> representative;
  for (int pool = 0; pool < 2; ++pool) {
    for (int t = 0; t < trials; ++t) {
      const int value = pools[pool][rng.UniformInt(pools[pool].size())];
      fo::Report report = oracle->Randomize(value, rng);
      const std::string key = ReportKey(report);
      if (pool == 0) {
        key_mass[key].first += 1.0 / trials;
      } else {
        key_mass[key].second += 1.0 / trials;
      }
      representative.emplace(key, std::move(report));
    }
  }

  // Compare posteriors on every key with enough mass for a stable estimate.
  int checked = 0;
  for (const auto& [key, mass] : key_mass) {
    if (mass.first + mass.second < 0.02) continue;
    const double empirical_post0 = mass.first / (mass.first + mass.second);
    const double attacker_post0 =
        attacker.Posterior({representative.at(key)})[0];
    EXPECT_NEAR(attacker_post0, empirical_post0, 0.02)
        << fo::ProtocolName(protocol) << " key=" << key;
    ++checked;
  }
  EXPECT_GE(checked, 3) << fo::ProtocolName(protocol);
}

INSTANTIATE_TEST_SUITE_P(ValueProtocols, PoolPosteriorBruteForceTest,
                         ::testing::Values(fo::Protocol::kGrr,
                                           fo::Protocol::kSs,
                                           fo::Protocol::kSue,
                                           fo::Protocol::kOue));

// Accuracy sweep: for every protocol the attack beats the baseline once
// enough reports accumulate, and accuracy is monotone (up to noise) in the
// number of reports.
class PoolAttackSweepTest
    : public ::testing::TestWithParam<std::tuple<fo::Protocol, double>> {};

TEST_P(PoolAttackSweepTest, BeatsBaselineAndGrowsWithReports) {
  const auto [protocol, eps] = GetParam();
  const int k = 16;
  auto oracle = fo::MakeOracle(protocol, k, eps);
  auto pools = ContiguousPools(k, 4);
  Rng rng(1000 + static_cast<int>(protocol));

  PoolAttackResult r1 = SimulatePoolInference(*oracle, pools, 1500, 1, rng);
  PoolAttackResult r30 = SimulatePoolInference(*oracle, pools, 1500, 30, rng);
  EXPECT_NEAR(r1.baseline_percent, 25.0, 1e-12);
  // 30 repeated collections leak the pool decisively at these budgets:
  // every protocol roughly doubles the 25% baseline or better.
  EXPECT_GT(r30.acc_percent, 45.0) << fo::ProtocolName(protocol);
  EXPECT_GT(r30.acc_percent, r1.acc_percent - 3.0);
  // A single report is already above baseline (weakly for OLH at eps=1).
  EXPECT_GT(r1.acc_percent, r1.baseline_percent - 2.0);
}

INSTANTIATE_TEST_SUITE_P(
    ProtocolEps, PoolAttackSweepTest,
    ::testing::Combine(::testing::Values(fo::Protocol::kGrr, fo::Protocol::kOlh,
                                         fo::Protocol::kSs, fo::Protocol::kSue,
                                         fo::Protocol::kOue),
                       ::testing::Values(1.0, 2.0)));

}  // namespace
}  // namespace ldpr::attack
