#include "attack/profiling.h"

#include <set>

#include <gtest/gtest.h>

#include "core/check.h"
#include "data/synthetic.h"

namespace ldpr::attack {
namespace {

TEST(SurveyPlanTest, SizesWithinPaperBounds) {
  Rng rng(1);
  const int d = 10;
  SurveyPlan plan = MakeSurveyPlan(d, 5, rng);
  EXPECT_EQ(plan.num_surveys(), 5);
  for (const auto& attrs : plan.surveys) {
    EXPECT_GE(static_cast<int>(attrs.size()), d / 2);
    EXPECT_LE(static_cast<int>(attrs.size()), d);
    std::set<int> uniq(attrs.begin(), attrs.end());
    EXPECT_EQ(uniq.size(), attrs.size());
    for (int a : attrs) {
      EXPECT_GE(a, 0);
      EXPECT_LT(a, d);
    }
  }
}

TEST(SurveyPlanTest, Validation) {
  Rng rng(2);
  EXPECT_THROW(MakeSurveyPlan(1, 5, rng), InvalidArgumentError);
  EXPECT_THROW(MakeSurveyPlan(10, 0, rng), InvalidArgumentError);
}

TEST(LdpChannelTest, HighEpsilonRecoversGrrValue) {
  auto channel = MakeLdpChannel(fo::Protocol::kGrr, {5, 9}, 20.0);
  Rng rng(3);
  for (int t = 0; t < 50; ++t) {
    EXPECT_EQ(channel->ReportAndPredict(3, 0, rng), 3);
    EXPECT_EQ(channel->ReportAndPredict(7, 1, rng), 7);
  }
}

TEST(LdpChannelTest, LowEpsilonIsNoisy) {
  auto channel = MakeLdpChannel(fo::Protocol::kGrr, {50}, 0.1);
  Rng rng(4);
  int correct = 0;
  for (int t = 0; t < 2000; ++t) {
    correct += (channel->ReportAndPredict(7, 0, rng) == 7);
  }
  EXPECT_LT(correct / 2000.0, 0.2);
}

TEST(PieChannelTest, SmallDomainsAreClearText) {
  // At beta = 0.5 over ~45k users, k <= ~100 attributes skip the randomizer
  // ([35, Prop. 9]) — predictions become exact.
  auto channel = MakePieChannel(fo::Protocol::kOue, {16, 2}, 0.5, 45222);
  Rng rng(5);
  for (int t = 0; t < 100; ++t) {
    EXPECT_EQ(channel->ReportAndPredict(7, 0, rng), 7);
    EXPECT_EQ(channel->ReportAndPredict(1, 1, rng), 1);
  }
}

TEST(PieChannelTest, TighterBetaKeepsRandomizer) {
  // beta = 0.95 gives a tiny alpha; a large-domain attribute must stay
  // randomized and predictions become unreliable.
  auto channel =
      MakePieChannel(fo::Protocol::kGrr, {20000}, 0.95, 45222);
  Rng rng(6);
  int correct = 0;
  for (int t = 0; t < 500; ++t) {
    correct += (channel->ReportAndPredict(7, 0, rng) == 7);
  }
  EXPECT_LT(correct / 500.0, 0.2);
}

TEST(SmpProfilingTest, UniformModeGrowsFreshAttributes) {
  data::Dataset ds = data::NurseryLike(7, 0.05);
  Rng rng(7);
  SurveyPlan plan = MakeSurveyPlan(ds.d(), 4, rng);
  auto channel = MakeLdpChannel(fo::Protocol::kGrr, ds.domain_sizes(), 5.0);
  auto snapshots = SimulateSmpProfiling(ds, *channel, plan,
                                        PrivacyMetricMode::kUniform, rng);
  ASSERT_EQ(static_cast<int>(snapshots.size()), 4);
  for (int s = 0; s < 4; ++s) {
    ASSERT_EQ(static_cast<int>(snapshots[s].size()), ds.n());
  }
  // Under the uniform metric each user reports exactly one fresh attribute
  // per survey (surveys cover >= d/2 of d attributes, so no exhaustion in 4
  // surveys when d = 9).
  for (int u = 0; u < ds.n(); ++u) {
    for (int s = 0; s < 4; ++s) {
      EXPECT_EQ(static_cast<int>(snapshots[s][u].size()), s + 1);
      // Profiles contain distinct attributes with valid values.
      std::set<int> attrs;
      for (const auto& [a, v] : snapshots[s][u]) {
        attrs.insert(a);
        EXPECT_GE(v, 0);
        EXPECT_LT(v, ds.domain_size(a));
      }
      EXPECT_EQ(static_cast<int>(attrs.size()), s + 1);
    }
  }
}

TEST(SmpProfilingTest, NonUniformModeGrowsSlower) {
  data::Dataset ds = data::NurseryLike(8, 0.05);
  Rng rng(8);
  SurveyPlan plan = MakeSurveyPlan(ds.d(), 5, rng);
  auto channel = MakeLdpChannel(fo::Protocol::kGrr, ds.domain_sizes(), 5.0);

  Rng rng_u(9), rng_nu(9);
  auto uni = SimulateSmpProfiling(ds, *channel, plan,
                                  PrivacyMetricMode::kUniform, rng_u);
  auto nonuni = SimulateSmpProfiling(ds, *channel, plan,
                                     PrivacyMetricMode::kNonUniform, rng_nu);
  // With replacement, repeated attributes are memoized, so the average
  // profile is strictly smaller than under the uniform metric.
  double uni_size = 0.0, nonuni_size = 0.0;
  for (int u = 0; u < ds.n(); ++u) {
    uni_size += uni.back()[u].size();
    nonuni_size += nonuni.back()[u].size();
  }
  EXPECT_LT(nonuni_size, uni_size);
  // And each profile is still within [1, num_surveys].
  for (int u = 0; u < ds.n(); ++u) {
    EXPECT_GE(static_cast<int>(nonuni.back()[u].size()), 1);
    EXPECT_LE(static_cast<int>(nonuni.back()[u].size()), 5);
  }
}

TEST(SmpProfilingTest, HighEpsilonProfilesMatchTruth) {
  data::Dataset ds = data::NurseryLike(10, 0.05);
  Rng rng(10);
  SurveyPlan plan = MakeSurveyPlan(ds.d(), 3, rng);
  auto channel = MakeLdpChannel(fo::Protocol::kGrr, ds.domain_sizes(), 20.0);
  auto snapshots = SimulateSmpProfiling(ds, *channel, plan,
                                        PrivacyMetricMode::kUniform, rng);
  for (int u = 0; u < ds.n(); ++u) {
    for (const auto& [a, v] : snapshots.back()[u]) {
      EXPECT_EQ(v, ds.value(u, a));
    }
  }
}

TEST(RsFdProfilingTest, ProducesProfilesWithChainedPredictions) {
  data::Dataset ds = data::AcsEmploymentLike(11, 0.08);
  Rng rng(11);
  SurveyPlan plan = MakeSurveyPlan(ds.d(), 2, rng);
  ml::GbdtConfig gbdt;
  gbdt.num_rounds = 5;
  gbdt.max_depth = 3;
  auto snapshots = SimulateRsFdProfiling(ds, multidim::RsFdVariant::kGrr, 4.0,
                                         plan, /*synthetic_multiplier=*/1.0,
                                         gbdt, rng);
  ASSERT_EQ(snapshots.size(), 2u);
  for (int u = 0; u < ds.n(); ++u) {
    // One predicted (attribute, value) per survey, possibly overlapping.
    EXPECT_GE(static_cast<int>(snapshots[1][u].size()), 1);
    EXPECT_LE(static_cast<int>(snapshots[1][u].size()), 2);
    for (const auto& [a, v] : snapshots[1][u]) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, ds.domain_size(a));
    }
  }
}

}  // namespace
}  // namespace ldpr::attack
