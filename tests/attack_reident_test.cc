#include "attack/reident.h"

#include <gtest/gtest.h>

#include "core/check.h"
#include "data/synthetic.h"

namespace ldpr::attack {
namespace {

/// A tiny background of n records over 2 attributes where record i is
/// (i mod ka, i mod kb) — easy to reason about uniqueness.
data::Dataset GridBackground(int n, int ka, int kb) {
  data::Dataset ds({ka, kb});
  for (int i = 0; i < n; ++i) ds.AddRecord({i % ka, i % kb});
  return ds;
}

ReidentConfig AllTargets(std::vector<int> top_k = {1, 10}) {
  ReidentConfig config;
  config.top_k = std::move(top_k);
  config.max_targets = 0;
  return config;
}

TEST(ReidentTest, PerfectProfilesOnUniqueRecordsGiveFullAccuracy) {
  // 12 records, (i mod 4, i mod 3): unique combination per record (lcm = 12).
  data::Dataset ds = GridBackground(12, 4, 3);
  std::vector<Profile> profiles(12);
  for (int i = 0; i < 12; ++i) {
    profiles[i] = {{0, i % 4}, {1, i % 3}};
  }
  Rng rng(1);
  auto result = ReidentAccuracy(profiles, ds, {true, true},
                                AllTargets({1}), rng);
  EXPECT_DOUBLE_EQ(result.rid_acc_percent[0], 100.0);
}

TEST(ReidentTest, AnonymitySetSplitsProbability) {
  // 10 identical records: a perfect profile still ties with all 10.
  data::Dataset ds({2, 2});
  for (int i = 0; i < 10; ++i) ds.AddRecord({1, 0});
  std::vector<Profile> profiles(10, Profile{{0, 1}, {1, 0}});
  Rng rng(2);
  auto result =
      ReidentAccuracy(profiles, ds, {true, true}, AllTargets({1, 5, 10}),
                      rng);
  EXPECT_NEAR(result.rid_acc_percent[0], 10.0, 1e-9);   // top-1: 1/10
  EXPECT_NEAR(result.rid_acc_percent[1], 50.0, 1e-9);   // top-5: 5/10
  EXPECT_NEAR(result.rid_acc_percent[2], 100.0, 1e-9);  // top-10
}

TEST(ReidentTest, WrongProfileValuesKillAccuracy) {
  data::Dataset ds = GridBackground(12, 4, 3);
  std::vector<Profile> profiles(12);
  for (int i = 0; i < 12; ++i) {
    // Predictions are deterministically wrong on attribute 0.
    profiles[i] = {{0, (i + 1) % 4}, {1, i % 3}};
  }
  Rng rng(3);
  auto result = ReidentAccuracy(profiles, ds, {true, true}, AllTargets({1}),
                                rng);
  // The target's own record is at distance 1 while some other record matches
  // both attributes exactly, so top-1 misses.
  EXPECT_LT(result.rid_acc_percent[0], 10.0);
}

TEST(ReidentTest, EmptyProfileFallsBackToBaseline) {
  data::Dataset ds = GridBackground(20, 4, 5);
  std::vector<Profile> profiles(20);  // all empty
  Rng rng(4);
  auto result = ReidentAccuracy(profiles, ds, {true, true}, AllTargets({1}),
                                rng);
  EXPECT_NEAR(result.rid_acc_percent[0], BaselineRidAcc(1, 20), 1e-9);
}

TEST(ReidentTest, PartialKnowledgeIgnoresUnknownAttributes) {
  data::Dataset ds = GridBackground(12, 4, 3);
  std::vector<Profile> profiles(12);
  for (int i = 0; i < 12; ++i) {
    profiles[i] = {{0, i % 4}, {1, i % 3}};
  }
  Rng rng(5);
  // Background knows only attribute 0: each profile now ties with the 3
  // records sharing i mod 4.
  auto result = ReidentAccuracy(profiles, ds, {true, false}, AllTargets({1}),
                                rng);
  EXPECT_NEAR(result.rid_acc_percent[0], 100.0 / 3.0, 1e-9);
}

TEST(ReidentTest, TargetSubsampleApproximatesFullEvaluation) {
  data::Dataset ds = data::AdultLike(6, 0.05);
  const int n = ds.n();
  Rng prof_rng(6);
  std::vector<Profile> profiles(n);
  for (int i = 0; i < n; ++i) {
    // True values on three attributes, 30% chance of a wrong value each.
    for (int a : {0, 2, 8}) {
      int v = ds.value(i, a);
      if (prof_rng.Bernoulli(0.3)) {
        v = static_cast<int>(prof_rng.UniformInt(ds.domain_size(a)));
      }
      profiles[i].emplace_back(a, v);
    }
  }
  std::vector<bool> bk(ds.d(), true);
  Rng rng_full(7), rng_sub(8);
  auto full = ReidentAccuracy(profiles, ds, bk, AllTargets({10}), rng_full);
  ReidentConfig sub_config;
  sub_config.top_k = {10};
  sub_config.max_targets = 1500;
  auto sub = ReidentAccuracy(profiles, ds, bk, sub_config, rng_sub);
  EXPECT_NEAR(sub.rid_acc_percent[0], full.rid_acc_percent[0], 5.0);
}

TEST(ReidentTest, MoreProfiledAttributesHelpTheAttacker) {
  data::Dataset ds = data::AdultLike(9, 0.05);
  const int n = ds.n();
  std::vector<Profile> small(n), large(n);
  for (int i = 0; i < n; ++i) {
    small[i] = {{0, ds.value(i, 0)}};
    for (int a = 0; a < 5; ++a) large[i].emplace_back(a, ds.value(i, a));
  }
  std::vector<bool> bk(ds.d(), true);
  Rng rng(9);
  ReidentConfig config;
  config.top_k = {1};
  config.max_targets = 1000;
  auto acc_small = ReidentAccuracy(small, ds, bk, config, rng);
  auto acc_large = ReidentAccuracy(large, ds, bk, config, rng);
  EXPECT_GT(acc_large.rid_acc_percent[0], acc_small.rid_acc_percent[0]);
}

TEST(ReidentTest, MakeBackgroundAttributes) {
  Rng rng(10);
  auto fk = MakeBackgroundAttributes(10, ReidentModel::kFullKnowledge, rng);
  EXPECT_EQ(std::count(fk.begin(), fk.end(), true), 10);
  for (int t = 0; t < 20; ++t) {
    auto pk =
        MakeBackgroundAttributes(10, ReidentModel::kPartialKnowledge, rng);
    auto m = std::count(pk.begin(), pk.end(), true);
    EXPECT_GE(m, 5);
    EXPECT_LE(m, 10);
  }
  EXPECT_THROW(MakeBackgroundAttributes(1, ReidentModel::kFullKnowledge, rng),
               InvalidArgumentError);
}

TEST(ReidentTest, BaselineFormula) {
  EXPECT_DOUBLE_EQ(BaselineRidAcc(1, 100), 1.0);
  EXPECT_DOUBLE_EQ(BaselineRidAcc(10, 100), 10.0);
  EXPECT_DOUBLE_EQ(BaselineRidAcc(200, 100), 100.0);  // capped
  EXPECT_THROW(BaselineRidAcc(0, 100), InvalidArgumentError);
}

TEST(ReidentTest, Validation) {
  data::Dataset ds = GridBackground(5, 2, 3);
  std::vector<Profile> profiles(4);  // wrong size
  Rng rng(11);
  EXPECT_THROW(
      ReidentAccuracy(profiles, ds, {true, true}, AllTargets(), rng),
      InvalidArgumentError);
  profiles.resize(5);
  EXPECT_THROW(ReidentAccuracy(profiles, ds, {true}, AllTargets(), rng),
               InvalidArgumentError);
  ReidentConfig bad;
  bad.top_k = {};
  EXPECT_THROW(ReidentAccuracy(profiles, ds, {true, true}, bad, rng),
               InvalidArgumentError);
}

TEST(ReidentTest, BkNoiseValidatedAndZeroNoiseIdentical) {
  data::Dataset ds = data::AdultLike(3, 0.02);
  Rng rng(4);
  std::vector<Profile> profiles(ds.n());
  for (int i = 0; i < ds.n(); ++i) {
    for (int j = 0; j < 4; ++j) profiles[i].emplace_back(j, ds.value(i, j));
  }
  std::vector<bool> bk(ds.d(), true);
  ReidentConfig config;
  config.max_targets = 500;
  config.bk_noise = -0.1;
  EXPECT_THROW(ReidentAccuracy(profiles, ds, bk, config, rng),
               InvalidArgumentError);
  config.bk_noise = 1.5;
  EXPECT_THROW(ReidentAccuracy(profiles, ds, bk, config, rng),
               InvalidArgumentError);

  // bk_noise = 0 must take the exact-background path (same result as the
  // default config given the same rng stream).
  config.bk_noise = 0.0;
  Rng rng_a(7), rng_b(7);
  ReidentConfig default_config;
  default_config.max_targets = 500;
  auto with_flag = ReidentAccuracy(profiles, ds, bk, config, rng_a);
  auto without = ReidentAccuracy(profiles, ds, bk, default_config, rng_b);
  EXPECT_EQ(with_flag.rid_acc_percent, without.rid_acc_percent);
}

TEST(ReidentTest, BkNoiseDegradesTheAttackMonotonically) {
  // Perfect profiles against increasingly corrupted background knowledge:
  // RID-ACC must fall from its exact-copy level toward the baseline.
  data::Dataset ds = data::AdultLike(5, 0.03);
  Rng rng(11);
  std::vector<Profile> profiles(ds.n());
  for (int i = 0; i < ds.n(); ++i) {
    for (int j = 0; j < 5; ++j) profiles[i].emplace_back(j, ds.value(i, j));
  }
  std::vector<bool> bk(ds.d(), true);
  double prev = 101.0;
  for (double noise : {0.0, 0.2, 0.5, 0.9}) {
    ReidentConfig config;
    config.top_k = {10};
    config.max_targets = 800;
    config.bk_noise = noise;
    auto result = ReidentAccuracy(profiles, ds, bk, config, rng);
    EXPECT_LT(result.rid_acc_percent[0], prev + 2.0) << "noise=" << noise;
    prev = result.rid_acc_percent[0];
  }
  // At 90% corruption the background is nearly useless.
  EXPECT_LT(prev, 25.0);
}

}  // namespace
}  // namespace ldpr::attack
