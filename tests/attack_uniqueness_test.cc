// Tests for the anonymity-set analysis (attack/uniqueness): class statistics
// on hand-built populations, the expected top-k hit rate, monotonicity of the
// uniqueness curve, and the closed-form RID-ACC prediction against both its
// factors and the empirical re-identification pipeline.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "attack/reident.h"
#include "attack/uniqueness.h"
#include "core/check.h"
#include "data/synthetic.h"
#include "fo/analytic_acc.h"

namespace ldpr::attack {
namespace {

data::Dataset MakeToy() {
  // 6 users, 2 attributes. Profiles: (0,0) x3, (1,0) x2, (1,1) x1.
  data::Dataset ds({2, 2});
  ds.AddRecord({0, 0});
  ds.AddRecord({0, 0});
  ds.AddRecord({0, 0});
  ds.AddRecord({1, 0});
  ds.AddRecord({1, 0});
  ds.AddRecord({1, 1});
  return ds;
}

TEST(UniquenessTest, ClassStatisticsOnToyPopulation) {
  UniquenessProfile p = ComputeUniqueness(MakeToy());
  EXPECT_EQ(p.num_users, 6);
  EXPECT_EQ(p.num_classes, 3);
  EXPECT_NEAR(p.unique_fraction, 1.0 / 6.0, 1e-12);
  // User-averaged class size: (3*3 + 2*2 + 1*1)/6 = 14/6.
  EXPECT_NEAR(p.mean_class_size, 14.0 / 6.0, 1e-12);
  EXPECT_EQ(p.class_size_counts.at(1), 1);
  EXPECT_EQ(p.class_size_counts.at(2), 1);
  EXPECT_EQ(p.class_size_counts.at(3), 1);
}

TEST(UniquenessTest, ProjectionCoarsensClasses) {
  // Attribute 0 alone: classes {0} x3 and {1} x3 — nobody unique.
  UniquenessProfile p = ComputeUniqueness(MakeToy(), {0});
  EXPECT_EQ(p.num_classes, 2);
  EXPECT_DOUBLE_EQ(p.unique_fraction, 0.0);
}

TEST(UniquenessTest, ExpectedTopKHitOnToyPopulation) {
  UniquenessProfile p = ComputeUniqueness(MakeToy());
  // top-1: 3 users at 1/3 + 2 users at 1/2 + 1 user at 1 -> (1+1+1)/6.
  EXPECT_NEAR(p.ExpectedTopKHit(1), 3.0 / 6.0, 1e-12);
  // top-10 >= class sizes everywhere -> certain hit.
  EXPECT_DOUBLE_EQ(p.ExpectedTopKHit(10), 1.0);
  // Monotone in k.
  EXPECT_LE(p.ExpectedTopKHit(1), p.ExpectedTopKHit(2));
  EXPECT_LE(p.ExpectedTopKHit(2), p.ExpectedTopKHit(3));
}

TEST(UniquenessTest, AllUniquePopulation) {
  data::Dataset ds({10});
  for (int v = 0; v < 10; ++v) ds.AddRecord({v});
  UniquenessProfile p = ComputeUniqueness(ds);
  EXPECT_DOUBLE_EQ(p.unique_fraction, 1.0);
  EXPECT_DOUBLE_EQ(p.mean_class_size, 1.0);
  EXPECT_DOUBLE_EQ(p.ExpectedTopKHit(1), 1.0);
}

TEST(UniquenessTest, RejectsBadAttributeIndices) {
  EXPECT_THROW(ComputeUniqueness(MakeToy(), {2}), InvalidArgumentError);
  EXPECT_THROW(ComputeUniqueness(MakeToy(), {-1}), InvalidArgumentError);
  UniquenessProfile p = ComputeUniqueness(MakeToy());
  EXPECT_THROW(p.ExpectedTopKHit(0), InvalidArgumentError);
}

TEST(UniquenessTest, CurveIsMonotoneInAttributeCount) {
  // More attributes can only refine equivalence classes, so averaged
  // uniqueness and top-k hit rates grow with m (up to subset sampling noise;
  // we use enough subsets that monotonicity holds on this generator).
  data::Dataset ds = data::AdultLike(31, 0.05);
  Rng rng(7);
  auto curve = UniquenessCurve(ds, /*subsets_per_size=*/8, rng);
  ASSERT_EQ(static_cast<int>(curve.size()), ds.d());
  for (std::size_t i = 1; i < curve.size(); ++i) {
    EXPECT_GE(curve[i].unique_fraction + 0.02, curve[i - 1].unique_fraction)
        << "m=" << curve[i].num_attributes;
    EXPECT_GE(curve[i].expected_top1 + 0.02, curve[i - 1].expected_top1);
  }
  // Full projection on a census-like population is near-unique.
  EXPECT_GT(curve.back().unique_fraction, 0.5);
}

TEST(UniquenessTest, PredictionFactorsMultiply) {
  data::Dataset ds = data::AdultLike(32, 0.05);
  const std::vector<int> attrs = {0, 1, 2};
  const double eps = 5.0;
  std::vector<int> k;
  for (int j : attrs) k.push_back(ds.domain_size(j));
  const double predicted =
      PredictedRidAccPercent(ds, attrs, fo::Protocol::kGrr, eps, 1);
  const double acc = fo::ExpectedAccUniform(fo::Protocol::kGrr, eps, k);
  const double hit = ComputeUniqueness(ds, attrs).ExpectedTopKHit(1);
  EXPECT_NEAR(predicted, 100.0 * acc * hit, 1e-9);
}

TEST(UniquenessTest, PredictionGrowsWithEpsilonAndTopK) {
  data::Dataset ds = data::AdultLike(33, 0.05);
  const std::vector<int> attrs = {0, 1, 2, 3};
  double prev = 0.0;
  for (double eps : {1.0, 4.0, 7.0, 10.0}) {
    double pred = PredictedRidAccPercent(ds, attrs, fo::Protocol::kGrr, eps, 1);
    EXPECT_GE(pred, prev);
    prev = pred;
  }
  EXPECT_LE(PredictedRidAccPercent(ds, attrs, fo::Protocol::kGrr, 5.0, 1),
            PredictedRidAccPercent(ds, attrs, fo::Protocol::kGrr, 5.0, 10));
}

TEST(UniquenessTest, PredictionLowerBoundsEmpiricalPipelineAtHighEps) {
  // At eps = 14 profiling is near-perfect (GRR ACC > 99.9% per attribute on
  // these domains), so the empirical FK-RI RID-ACC should approach the
  // prediction; at any eps the prediction must not exceed the empirical
  // value by more than the Monte-Carlo noise since mis-profiles can still
  // match by luck.
  data::Dataset ds = data::AdultLike(34, 0.03);
  const std::vector<int> attrs = {0, 1, 2, 3, 4};
  const double eps = 14.0;
  const double predicted =
      PredictedRidAccPercent(ds, attrs, fo::Protocol::kGrr, eps, 1);

  // Empirical: sanitize the 5 attributes with GRR at eps, attack each
  // report into a profile, then match against the full dataset (FK-RI).
  Rng rng(99);
  auto channel = MakeLdpChannel(fo::Protocol::kGrr, ds.domain_sizes(), eps);
  std::vector<Profile> profiles(ds.n());
  for (int i = 0; i < ds.n(); ++i) {
    for (int j : attrs) {
      profiles[i].emplace_back(
          j, channel->ReportAndPredict(ds.value(i, j), j, rng));
    }
  }
  ReidentConfig config;
  config.top_k = {1};
  config.max_targets = 0;  // evaluate every user
  std::vector<bool> bk(ds.d(), true);
  ReidentResult result = ReidentAccuracy(profiles, ds, bk, config, rng);
  EXPECT_NEAR(result.rid_acc_percent[0], predicted,
              std::max(2.0, 0.2 * predicted));
}

}  // namespace
}  // namespace ldpr::attack
