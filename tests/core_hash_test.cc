#include "core/hash.h"

#include <cstring>
#include <map>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "core/check.h"

namespace ldpr {
namespace {

TEST(Mix64Test, DeterministicAndDistinct) {
  EXPECT_EQ(Mix64(1), Mix64(1));
  std::set<std::uint64_t> outputs;
  for (std::uint64_t i = 0; i < 1000; ++i) outputs.insert(Mix64(i));
  EXPECT_EQ(outputs.size(), 1000u);
}

TEST(XxHash64Test, MatchesReferenceVectors) {
  // Reference values from the canonical xxHash64 implementation.
  EXPECT_EQ(XxHash64(nullptr, 0, 0), 0xEF46DB3751D8E999ULL);
  EXPECT_EQ(XxHash64(nullptr, 0, 1), 0xD5AFBA1336A3BE4BULL);
  const char* abc = "abc";
  EXPECT_EQ(XxHash64(abc, 3, 0), 0x44BC2CF5AD770999ULL);
  const std::string long_str =
      "xxHash is an extremely fast non-cryptographic hash algorithm";
  EXPECT_EQ(XxHash64(long_str.data(), long_str.size(), 0),
            XxHash64(long_str.data(), long_str.size(), 0));
}

TEST(XxHash64Test, SeedChangesOutput) {
  const char* data = "hello world";
  EXPECT_NE(XxHash64(data, 11, 1), XxHash64(data, 11, 2));
}

TEST(XxHash64Test, LengthBoundaries) {
  // Exercise every tail-handling branch: < 4, 4-7, 8-31, >= 32 bytes.
  std::string buf(64, 'x');
  std::set<std::uint64_t> hashes;
  for (std::size_t len : {0u, 1u, 3u, 4u, 7u, 8u, 15u, 31u, 32u, 33u, 63u}) {
    hashes.insert(XxHash64(buf.data(), len, 0));
  }
  EXPECT_EQ(hashes.size(), 11u);
}

TEST(XxHash64Test, Len8DecompositionMatchesFullHash) {
  // The identity hash.h promises: the 8-byte specialization, split at the
  // input-only / seed-dependent seam the batched OLH kernel hoists across,
  // equals the general-purpose hash of the word's native-endian bytes.
  std::uint64_t word = 0x0123456789ABCDEFULL;
  std::uint64_t seed = 0x9E3779B97F4A7C15ULL;
  for (int i = 0; i < 256; ++i) {
    EXPECT_EQ(XxHash64(&word, 8, seed),
              XxHash64Len8(seed, XxHash64Len8Mix(word)))
        << "word=" << word << " seed=" << seed;
    EXPECT_EQ(XxHash64Len8(seed, XxHash64Len8Mix(word)),
              XxHash64Len8Finish(XxHash64Len8Preseed(seed),
                                 XxHash64Len8Mix(word)));
    // March both inputs through distinct bit patterns (splitmix-style).
    word = Mix64(word + 0x9E3779B97F4A7C15ULL);
    seed = Mix64(seed + 0xBF58476D1CE4E5B9ULL);
  }
  // Edge seeds/words.
  for (std::uint64_t w : {std::uint64_t{0}, ~std::uint64_t{0}}) {
    for (std::uint64_t s : {std::uint64_t{0}, ~std::uint64_t{0}}) {
      EXPECT_EQ(XxHash64(&w, 8, s), XxHash64Len8(s, XxHash64Len8Mix(w)));
    }
  }
}

TEST(UniversalHashTest, OutputInRange) {
  UniversalHash h(12345, 7);
  for (int v = 0; v < 1000; ++v) {
    int out = h(v);
    EXPECT_GE(out, 0);
    EXPECT_LT(out, 7);
  }
}

TEST(UniversalHashTest, DeterministicPerSeed) {
  UniversalHash a(99, 10), b(99, 10);
  for (int v = 0; v < 100; ++v) EXPECT_EQ(a(v), b(v));
}

TEST(UniversalHashTest, RejectsInvalidDomain) {
  EXPECT_THROW(UniversalHash(1, 0), InvalidArgumentError);
  EXPECT_THROW(UniversalHash(1, -2), InvalidArgumentError);
}

TEST(UniversalHashTest, FamilyIsApproximatelyUniversal) {
  // For a universal family, Pr_H[H(x) = H(y)] should be about 1/g for x != y.
  const int g = 8;
  const int num_seeds = 4000;
  long long collisions = 0;
  for (int s = 0; s < num_seeds; ++s) {
    UniversalHash h(static_cast<std::uint64_t>(s) * 2654435761ULL + 17, g);
    if (h(3) == h(42)) ++collisions;
  }
  EXPECT_NEAR(static_cast<double>(collisions) / num_seeds, 1.0 / g, 0.03);
}

TEST(UniversalHashTest, CellsAreBalanced) {
  // One fixed hash function should distribute a large domain near-evenly.
  const int g = 5;
  UniversalHash h(777, g);
  std::map<int, int> counts;
  const int domain = 10000;
  for (int v = 0; v < domain; ++v) ++counts[h(v)];
  for (const auto& [cell, count] : counts) {
    EXPECT_NEAR(static_cast<double>(count) / domain, 1.0 / g, 0.02)
        << "cell " << cell;
  }
}

}  // namespace
}  // namespace ldpr
