#include "core/rng.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

#include "core/check.h"

namespace ldpr {
namespace {

TEST(RngTest, DeterministicFromSeed) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(1000), b.UniformInt(1000));
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.UniformInt(1000000) == b.UniformInt(1000000)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, SplitStreamsAreIndependentAndReproducible) {
  Rng parent1(7), parent2(7);
  Rng c1 = parent1.Split();
  Rng c2 = parent2.Split();
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(c1.UniformInt(1 << 30), c2.UniformInt(1 << 30));
  }
  // Two successive splits from the same parent differ.
  Rng parent(9);
  Rng d1 = parent.Split();
  Rng d2 = parent.Split();
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (d1.UniformInt(1 << 30) == d2.UniformInt(1 << 30)) ++same;
  }
  EXPECT_LT(same, 5);
}

TEST(RngTest, UniformIntRange) {
  Rng rng(3);
  for (int i = 0; i < 1000; ++i) {
    std::uint64_t v = rng.UniformInt(7);
    EXPECT_LT(v, 7u);
  }
}

TEST(RngTest, UniformIntRejectsZero) {
  Rng rng(3);
  EXPECT_THROW(rng.UniformInt(0), InternalError);
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(11);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 2000; ++i) seen.insert(rng.UniformInt(10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformRangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    std::int64_t v = rng.UniformRange(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    saw_lo |= (v == -3);
    saw_hi |= (v == 3);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, UniformRealInUnitInterval) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    double v = rng.UniformReal();
    ASSERT_GE(v, 0.0);
    ASSERT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliEdgeCases) {
  Rng rng(23);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
    EXPECT_FALSE(rng.Bernoulli(-0.5));
    EXPECT_TRUE(rng.Bernoulli(1.5));
  }
}

TEST(RngTest, BernoulliMeanMatchesP) {
  Rng rng(29);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.015);
}

TEST(RngTest, LaplaceMeanAndScale) {
  Rng rng(31);
  const int trials = 50000;
  double sum = 0.0, abs_sum = 0.0;
  for (int i = 0; i < trials; ++i) {
    double v = rng.Laplace(2.0);
    sum += v;
    abs_sum += std::abs(v);
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.1);
  // E|X| = b for Laplace(0, b).
  EXPECT_NEAR(abs_sum / trials, 2.0, 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(37);
  const int trials = 50000;
  double sum = 0.0;
  for (int i = 0; i < trials; ++i) sum += rng.Exponential(2.0);
  EXPECT_NEAR(sum / trials, 0.5, 0.02);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(41);
  const int trials = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < trials; ++i) {
    double v = rng.Gaussian();
    sum += v;
    sq += v * v;
  }
  EXPECT_NEAR(sum / trials, 0.0, 0.03);
  EXPECT_NEAR(sq / trials, 1.0, 0.05);
}

TEST(RngTest, GammaMean) {
  Rng rng(43);
  const int trials = 50000;
  double sum = 0.0;
  for (int i = 0; i < trials; ++i) sum += rng.Gamma(3.0);
  EXPECT_NEAR(sum / trials, 3.0, 0.1);
}

TEST(RngTest, BinomialMean) {
  Rng rng(47);
  const int trials = 20000;
  long long sum = 0;
  for (int i = 0; i < trials; ++i) sum += rng.Binomial(50, 0.2);
  EXPECT_NEAR(static_cast<double>(sum) / trials, 10.0, 0.2);
}

TEST(RngTest, SampleWithoutReplacementProperties) {
  Rng rng(53);
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<int> s = rng.SampleWithoutReplacement(20, 8);
    ASSERT_EQ(s.size(), 8u);
    std::set<int> uniq(s.begin(), s.end());
    EXPECT_EQ(uniq.size(), 8u);
    for (int v : s) {
      EXPECT_GE(v, 0);
      EXPECT_LT(v, 20);
    }
  }
}

TEST(RngTest, SampleWithoutReplacementFullAndEmpty) {
  Rng rng(59);
  std::vector<int> all = rng.SampleWithoutReplacement(5, 5);
  std::sort(all.begin(), all.end());
  EXPECT_EQ(all, (std::vector<int>{0, 1, 2, 3, 4}));
  EXPECT_TRUE(rng.SampleWithoutReplacement(5, 0).empty());
  EXPECT_THROW(rng.SampleWithoutReplacement(3, 4), InvalidArgumentError);
}

TEST(RngTest, SampleWithoutReplacementIsUniform) {
  Rng rng(61);
  std::vector<int> counts(6, 0);
  const int trials = 30000;
  for (int t = 0; t < trials; ++t) {
    for (int v : rng.SampleWithoutReplacement(6, 2)) ++counts[v];
  }
  // Each element appears with probability 2/6 per trial.
  for (int v = 0; v < 6; ++v) {
    EXPECT_NEAR(static_cast<double>(counts[v]) / trials, 1.0 / 3.0, 0.02);
  }
}

TEST(RngTest, ShufflePreservesMultiset) {
  Rng rng(67);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ShuffleIsUniformOnFirstPosition) {
  Rng rng(71);
  std::vector<int> counts(5, 0);
  const int trials = 25000;
  for (int t = 0; t < trials; ++t) {
    std::vector<int> v{0, 1, 2, 3, 4};
    rng.Shuffle(&v);
    ++counts[v[0]];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / trials, 0.2, 0.015);
  }
}

}  // namespace
}  // namespace ldpr
