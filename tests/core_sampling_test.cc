#include "core/sampling.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "core/check.h"

namespace ldpr {
namespace {

TEST(NormalizeTest, Basic) {
  auto out = Normalize({1.0, 3.0});
  EXPECT_DOUBLE_EQ(out[0], 0.25);
  EXPECT_DOUBLE_EQ(out[1], 0.75);
}

TEST(NormalizeTest, RejectsBadInput) {
  EXPECT_THROW(Normalize({}), InvalidArgumentError);
  EXPECT_THROW(Normalize({0.0, 0.0}), InvalidArgumentError);
  EXPECT_THROW(Normalize({1.0, -0.5}), InvalidArgumentError);
}

TEST(CategoricalSamplerTest, ProbabilitiesNormalized) {
  CategoricalSampler s({2.0, 6.0, 2.0});
  EXPECT_EQ(s.size(), 3);
  EXPECT_DOUBLE_EQ(s.probability(0), 0.2);
  EXPECT_DOUBLE_EQ(s.probability(1), 0.6);
  EXPECT_DOUBLE_EQ(s.probability(2), 0.2);
}

TEST(CategoricalSamplerTest, EmpiricalMatchesTarget) {
  CategoricalSampler s({0.5, 0.1, 0.25, 0.15});
  Rng rng(123);
  std::vector<int> counts(4, 0);
  const int trials = 100000;
  for (int t = 0; t < trials; ++t) ++counts[s.Sample(rng)];
  EXPECT_NEAR(counts[0] / static_cast<double>(trials), 0.50, 0.01);
  EXPECT_NEAR(counts[1] / static_cast<double>(trials), 0.10, 0.01);
  EXPECT_NEAR(counts[2] / static_cast<double>(trials), 0.25, 0.01);
  EXPECT_NEAR(counts[3] / static_cast<double>(trials), 0.15, 0.01);
}

TEST(CategoricalSamplerTest, DegenerateSingleMass) {
  CategoricalSampler s({0.0, 1.0, 0.0});
  Rng rng(5);
  for (int t = 0; t < 100; ++t) EXPECT_EQ(s.Sample(rng), 1);
}

TEST(CategoricalSamplerTest, SingleElement) {
  CategoricalSampler s({3.0});
  Rng rng(5);
  EXPECT_EQ(s.Sample(rng), 0);
}

TEST(CategoricalSamplerTest, UniformInput) {
  CategoricalSampler s(std::vector<double>(10, 1.0));
  Rng rng(7);
  std::vector<int> counts(10, 0);
  for (int t = 0; t < 50000; ++t) ++counts[s.Sample(rng)];
  for (int c : counts) {
    EXPECT_NEAR(c / 50000.0, 0.1, 0.01);
  }
}

TEST(BinomialPmfTest, MatchesHandComputedValues) {
  // Bin(1; 2, 0.5) = 0.5, Bin(0; 2, 0.5) = 0.25.
  EXPECT_NEAR(BinomialPmf(1, 2, 0.5), 0.5, 1e-12);
  EXPECT_NEAR(BinomialPmf(0, 2, 0.5), 0.25, 1e-12);
  EXPECT_NEAR(BinomialPmf(2, 2, 0.5), 0.25, 1e-12);
  // Bin(3; 10, 0.2) = 120 * 0.008 * 0.8^7.
  EXPECT_NEAR(BinomialPmf(3, 10, 0.2), 120.0 * 0.008 * std::pow(0.8, 7),
              1e-12);
}

TEST(BinomialPmfTest, SumsToOne) {
  for (double p : {0.05, 0.3, 0.7, 0.99}) {
    double sum = 0.0;
    for (int i = 0; i <= 25; ++i) sum += BinomialPmf(i, 25, p);
    EXPECT_NEAR(sum, 1.0, 1e-10) << "p=" << p;
  }
}

TEST(BinomialPmfTest, EdgeCases) {
  EXPECT_DOUBLE_EQ(BinomialPmf(0, 5, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(1, 5, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(5, 5, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(4, 5, 1.0), 0.0);
  EXPECT_DOUBLE_EQ(BinomialPmf(6, 5, 0.5), 0.0);
  EXPECT_THROW(BinomialPmf(-1, 5, 0.5), InvalidArgumentError);
}

TEST(DirichletTest, SimplexAndSymmetry) {
  Rng rng(31);
  std::vector<double> mean(4, 0.0);
  const int trials = 5000;
  for (int t = 0; t < trials; ++t) {
    auto draw = SampleDirichlet(4, 1.0, rng);
    double sum = 0.0;
    for (int i = 0; i < 4; ++i) {
      ASSERT_GE(draw[i], 0.0);
      sum += draw[i];
      mean[i] += draw[i];
    }
    ASSERT_NEAR(sum, 1.0, 1e-9);
  }
  for (int i = 0; i < 4; ++i) {
    EXPECT_NEAR(mean[i] / trials, 0.25, 0.01);
  }
}

TEST(DirichletTest, HighAlphaConcentrates) {
  Rng rng(37);
  auto draw = SampleDirichlet(5, 1000.0, rng);
  for (double v : draw) EXPECT_NEAR(v, 0.2, 0.05);
}

TEST(ZipfDistributionTest, ShapeAndNormalization) {
  auto z = ZipfDistribution(5, 1.0);
  double sum = std::accumulate(z.begin(), z.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-12);
  for (int i = 1; i < 5; ++i) EXPECT_LT(z[i], z[i - 1]);
  // p_i proportional to 1/(i+1): p_0 / p_1 = 2.
  EXPECT_NEAR(z[0] / z[1], 2.0, 1e-9);
}

TEST(ZipfHistogramTest, SkewedTowardsFirstBuckets) {
  Rng rng(41);
  auto h = ZipfHistogram(10, 1.01, 100000, rng);
  double sum = std::accumulate(h.begin(), h.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(h[0], h[9]);
  EXPECT_GT(h[0], 0.3);  // heavy head
}

TEST(ExponentialHistogramTest, DecayingShape) {
  Rng rng(43);
  auto h = ExponentialHistogram(8, 1.0, 100000, rng);
  double sum = std::accumulate(h.begin(), h.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(h[0], h[4]);
  EXPECT_GT(h[1], h[6]);
}

TEST(SamplingValidationTest, RejectsBadParameters) {
  Rng rng(1);
  EXPECT_THROW(SampleDirichlet(0, 1.0, rng), InvalidArgumentError);
  EXPECT_THROW(SampleDirichlet(3, 0.0, rng), InvalidArgumentError);
  EXPECT_THROW(ZipfDistribution(0, 1.0), InvalidArgumentError);
  EXPECT_THROW(ZipfDistribution(3, -1.0), InvalidArgumentError);
  EXPECT_THROW(ZipfHistogram(5, 1.0, 2, rng), InvalidArgumentError);
  EXPECT_THROW(ExponentialHistogram(5, 0.0, 100, rng), InvalidArgumentError);
}

TEST(SampleMultinomialTest, PreservesTotalExactly) {
  Rng rng(5);
  const std::vector<double> weights = {0.5, 0.2, 0.2, 0.1};
  for (long long n : {0LL, 1LL, 17LL, 1000LL, 1000000LL}) {
    const auto counts = SampleMultinomial(n, weights, rng);
    ASSERT_EQ(counts.size(), weights.size());
    long long total = 0;
    for (long long c : counts) {
      EXPECT_GE(c, 0);
      total += c;
    }
    EXPECT_EQ(total, n);
  }
}

TEST(SampleMultinomialTest, MarginalMeansMatch) {
  Rng rng(6);
  const std::vector<double> weights = {4.0, 3.0, 2.0, 1.0};
  const auto probs = Normalize(weights);
  const long long n = 200000;
  const auto counts = SampleMultinomial(n, weights, rng);
  for (std::size_t i = 0; i < probs.size(); ++i) {
    // Binomial marginal: 5-sigma band around n p_i.
    const double sigma = std::sqrt(n * probs[i] * (1.0 - probs[i]));
    EXPECT_NEAR(static_cast<double>(counts[i]), n * probs[i], 5.0 * sigma)
        << "cell " << i;
  }
}

TEST(SampleMultinomialTest, DegenerateWeightPutsAllMassThere) {
  Rng rng(7);
  const auto counts = SampleMultinomial(1234, {0.0, 1.0, 0.0}, rng);
  EXPECT_EQ(counts[0], 0);
  EXPECT_EQ(counts[1], 1234);
  EXPECT_EQ(counts[2], 0);
}

TEST(SampleMultinomialTest, RejectsNegativeCount) {
  Rng rng(8);
  EXPECT_THROW(SampleMultinomial(-1, {1.0, 1.0}, rng), InvalidArgumentError);
}

}  // namespace
}  // namespace ldpr
