// Tests for the statistics utilities (core/stats): hand-computed summaries,
// Wilson interval reference values and properties, chi-square statistic and
// p-value against table values, and goodness-of-fit applied to the
// library's own samplers and randomizers (the GRR output distribution).

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/check.h"
#include "core/rng.h"
#include "core/stats.h"
#include "fo/grr.h"

namespace ldpr {
namespace {

TEST(SummaryTest, HandComputed) {
  Summary s = Summarize({1.0, 2.0, 3.0, 4.0});
  EXPECT_EQ(s.n, 4);
  EXPECT_DOUBLE_EQ(s.mean, 2.5);
  // Sample variance: ((1.5)^2 + (0.5)^2 + (0.5)^2 + (1.5)^2) / 3 = 5/3.
  EXPECT_NEAR(s.variance, 5.0 / 3.0, 1e-12);
  EXPECT_NEAR(s.stddev, std::sqrt(5.0 / 3.0), 1e-12);
  EXPECT_NEAR(s.stderr_mean, std::sqrt(5.0 / 3.0) / 2.0, 1e-12);
}

TEST(SummaryTest, SingleValueHasZeroSpread) {
  Summary s = Summarize({7.5});
  EXPECT_EQ(s.n, 1);
  EXPECT_DOUBLE_EQ(s.mean, 7.5);
  EXPECT_DOUBLE_EQ(s.variance, 0.0);
  EXPECT_THROW(Summarize({}), InvalidArgumentError);
}

TEST(WilsonTest, ReferenceValues) {
  // 10/100 at 95%: Wilson interval ~ [0.0552, 0.1744].
  Interval i = WilsonInterval(10, 100);
  EXPECT_NEAR(i.lo, 0.0552, 5e-4);
  EXPECT_NEAR(i.hi, 0.1744, 5e-4);
}

TEST(WilsonTest, Properties) {
  // Contains the point estimate; shrinks with more trials; stays in [0,1].
  Interval small = WilsonInterval(5, 20);
  Interval large = WilsonInterval(250, 1000);
  EXPECT_LT(small.lo, 0.25);
  EXPECT_GT(small.hi, 0.25);
  EXPECT_LT(large.hi - large.lo, small.hi - small.lo);
  Interval zero = WilsonInterval(0, 10);
  EXPECT_DOUBLE_EQ(zero.lo, 0.0);
  EXPECT_GT(zero.hi, 0.0);
  Interval full = WilsonInterval(10, 10);
  EXPECT_DOUBLE_EQ(full.hi, 1.0);
  EXPECT_THROW(WilsonInterval(5, 0), InvalidArgumentError);
  EXPECT_THROW(WilsonInterval(11, 10), InvalidArgumentError);
}

TEST(ChiSquareTest, StatisticHandComputed) {
  // Observed (10, 20, 30), expected uniform over 60: E = 20 each.
  // X^2 = 100/20 + 0 + 100/20 = 10.
  const double stat =
      ChiSquareStatistic({10, 20, 30}, {1.0 / 3, 1.0 / 3, 1.0 / 3});
  EXPECT_NEAR(stat, 10.0, 1e-12);
}

TEST(ChiSquareTest, PValueTableValues) {
  // Chi-square upper-tail table: P[X >= 3.841 | dof=1] = 0.05,
  // P[X >= 5.991 | dof=2] = 0.05, P[X >= 18.307 | dof=10] = 0.05.
  EXPECT_NEAR(ChiSquarePValue(3.841, 1), 0.05, 2e-4);
  EXPECT_NEAR(ChiSquarePValue(5.991, 2), 0.05, 2e-4);
  EXPECT_NEAR(ChiSquarePValue(18.307, 10), 0.05, 2e-4);
  EXPECT_NEAR(ChiSquarePValue(0.0, 3), 1.0, 1e-12);
  EXPECT_LT(ChiSquarePValue(100.0, 3), 1e-12);
}

TEST(ChiSquareTest, Validation) {
  EXPECT_THROW(ChiSquareStatistic({1}, {1.0}), InvalidArgumentError);
  EXPECT_THROW(ChiSquareStatistic({1, 2}, {0.5}), InvalidArgumentError);
  EXPECT_THROW(ChiSquareStatistic({1, 2}, {1.0, 0.0}), InvalidArgumentError);
  EXPECT_THROW(ChiSquareStatistic({0, 0}, {0.5, 0.5}), InvalidArgumentError);
  EXPECT_THROW(ChiSquarePValue(1.0, 0), InvalidArgumentError);
  EXPECT_THROW(ChiSquarePValue(-1.0, 1), InvalidArgumentError);
}

TEST(ChiSquareTest, UniformRngPassesGoodnessOfFit) {
  Rng rng(11);
  const int bins = 16;
  std::vector<long long> counts(bins, 0);
  for (int i = 0; i < 64000; ++i) ++counts[rng.UniformInt(bins)];
  std::vector<double> expected(bins, 1.0 / bins);
  EXPECT_GT(GoodnessOfFitPValue(counts, expected), 1e-4);
}

TEST(ChiSquareTest, BiasedCountsFailGoodnessOfFit) {
  // A 10% excess on one bin at this sample size is decisively rejected.
  const int bins = 8;
  std::vector<long long> counts(bins, 10000);
  counts[0] = 11000;
  std::vector<double> expected(bins, 1.0 / bins);
  EXPECT_LT(GoodnessOfFitPValue(counts, expected), 1e-6);
}

TEST(ChiSquareTest, GrrOutputDistributionMatchesTheory) {
  // End-to-end use: GRR's output distribution for a fixed input must match
  // (p, q, ..., q) — the library's own randomizer validated by the
  // library's own test machinery.
  const int k = 6;
  const double eps = 1.2;
  fo::Grr grr(k, eps);
  Rng rng(12);
  std::vector<long long> counts(k, 0);
  for (int i = 0; i < 120000; ++i) ++counts[grr.Randomize(2, rng).value];
  std::vector<double> expected(k, grr.q());
  expected[2] = grr.p();
  EXPECT_GT(GoodnessOfFitPValue(counts, expected), 1e-4);
}

}  // namespace
}  // namespace ldpr
