#include <atomic>
#include <cmath>
#include <cstdlib>
#include <vector>

#include <gtest/gtest.h>

#include "core/check.h"
#include "core/flags.h"
#include "core/histogram.h"
#include "core/metrics.h"
#include "core/parallel.h"

namespace ldpr {
namespace {

TEST(CheckTest, RequireThrowsInvalidArgument) {
  EXPECT_THROW(LDPR_REQUIRE(false, "boom " << 42), InvalidArgumentError);
  EXPECT_NO_THROW(LDPR_REQUIRE(true, "fine"));
}

TEST(CheckTest, CheckThrowsInternalError) {
  EXPECT_THROW(LDPR_CHECK(false, "bug"), InternalError);
  EXPECT_NO_THROW(LDPR_CHECK(true, "fine"));
}

TEST(CheckTest, MessageContainsContext) {
  try {
    LDPR_REQUIRE(1 == 2, "value was " << 7);
    FAIL() << "expected throw";
  } catch (const InvalidArgumentError& e) {
    std::string what = e.what();
    EXPECT_NE(what.find("1 == 2"), std::string::npos);
    EXPECT_NE(what.find("value was 7"), std::string::npos);
  }
}

TEST(HistogramTest, CountValues) {
  auto counts = CountValues({0, 1, 1, 2, 1}, 3);
  EXPECT_EQ(counts, (std::vector<long long>{1, 3, 1}));
  EXPECT_THROW(CountValues({0, 3}, 3), InvalidArgumentError);
  EXPECT_THROW(CountValues({-1}, 3), InvalidArgumentError);
}

TEST(HistogramTest, EmpiricalFrequency) {
  auto f = EmpiricalFrequency({0, 0, 1, 1}, 3);
  EXPECT_DOUBLE_EQ(f[0], 0.5);
  EXPECT_DOUBLE_EQ(f[1], 0.5);
  EXPECT_DOUBLE_EQ(f[2], 0.0);
  EXPECT_THROW(EmpiricalFrequency({}, 3), InvalidArgumentError);
}

TEST(HistogramTest, ProjectToSimplexClampsAndNormalizes) {
  auto out = ProjectToSimplex({-0.2, 0.5, 0.5});
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[1], 0.5);
  EXPECT_DOUBLE_EQ(out[2], 0.5);
  auto degenerate = ProjectToSimplex({-1.0, -2.0});
  EXPECT_DOUBLE_EQ(degenerate[0], 0.5);
  EXPECT_DOUBLE_EQ(degenerate[1], 0.5);
}

TEST(MetricsTest, Mse) {
  EXPECT_DOUBLE_EQ(Mse({1.0, 0.0}, {1.0, 0.0}), 0.0);
  EXPECT_DOUBLE_EQ(Mse({1.0, 0.0}, {0.0, 0.0}), 0.5);
  EXPECT_THROW(Mse({1.0}, {1.0, 2.0}), InvalidArgumentError);
}

TEST(MetricsTest, MseAvg) {
  std::vector<std::vector<double>> truth{{1.0, 0.0}, {0.5, 0.5}};
  std::vector<std::vector<double>> est{{0.0, 0.0}, {0.5, 0.5}};
  EXPECT_DOUBLE_EQ(MseAvg(truth, est), 0.25);
}

TEST(MetricsTest, AccuracyPercent) {
  EXPECT_DOUBLE_EQ(AccuracyPercent({1, 2, 3, 4}, {1, 2, 0, 4}), 75.0);
  EXPECT_THROW(AccuracyPercent({}, {}), InvalidArgumentError);
}

TEST(MetricsTest, ArgMaxMeanStdDev) {
  EXPECT_EQ(ArgMax({0.1, 0.9, 0.5}), 1);
  EXPECT_EQ(ArgMax({0.5, 0.5}), 0);  // first on tie
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(StdDev({2.0, 2.0, 2.0}), 0.0);
  EXPECT_NEAR(StdDev({1.0, 3.0}), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(StdDev({1.0}), 0.0);
}

TEST(ParallelForTest, CoversAllIndicesOnce) {
  const long long n = 10000;
  std::vector<std::atomic<int>> hits(n);
  ParallelFor(0, n, [&](long long i) { hits[i].fetch_add(1); }, 4);
  for (long long i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1);
}

TEST(ParallelForTest, EmptyRangeIsNoop) {
  bool ran = false;
  ParallelFor(5, 5, [&](long long) { ran = true; });
  ParallelFor(5, 3, [&](long long) { ran = true; });
  EXPECT_FALSE(ran);
}

TEST(ParallelForTest, PropagatesExceptions) {
  EXPECT_THROW(
      ParallelFor(0, 100, [](long long i) {
        if (i == 37) throw std::runtime_error("worker failure");
      }),
      std::runtime_error);
}

TEST(ParallelForTest, SingleThreadFallback) {
  long long sum = 0;
  ParallelFor(0, 100, [&](long long i) { sum += i; }, 1);
  EXPECT_EQ(sum, 4950);
}

TEST(FlagsTest, EnvParsing) {
  setenv("LDPR_TEST_INT", "42", 1);
  EXPECT_EQ(GetEnvInt("LDPR_TEST_INT", 7), 42);
  setenv("LDPR_TEST_INT", "not-a-number", 1);
  EXPECT_EQ(GetEnvInt("LDPR_TEST_INT", 7), 7);
  unsetenv("LDPR_TEST_INT");
  EXPECT_EQ(GetEnvInt("LDPR_TEST_INT", 7), 7);

  setenv("LDPR_TEST_DBL", "0.25", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("LDPR_TEST_DBL", 1.0), 0.25);
  unsetenv("LDPR_TEST_DBL");

  setenv("LDPR_TEST_STR", "hello", 1);
  EXPECT_EQ(GetEnvString("LDPR_TEST_STR", "x"), "hello");
  unsetenv("LDPR_TEST_STR");
  EXPECT_EQ(GetEnvString("LDPR_TEST_STR", "x"), "x");
}

TEST(FlagsTest, ScaleClampsToValidRange) {
  setenv("LDPR_SCALE", "0.5", 1);
  EXPECT_DOUBLE_EQ(DatasetScale(), 0.5);
  setenv("LDPR_SCALE", "7.0", 1);
  EXPECT_DOUBLE_EQ(DatasetScale(), 1.0);
  setenv("LDPR_SCALE", "-1", 1);
  EXPECT_DOUBLE_EQ(DatasetScale(), 1.0);
  unsetenv("LDPR_SCALE");
}

}  // namespace
}  // namespace ldpr
