#include "data/csv.h"

#include <cstdio>
#include <fstream>

#include <gtest/gtest.h>

#include "core/check.h"
#include "data/synthetic.h"

namespace ldpr::data {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    path_ = ::testing::TempDir() + "/ldpr_csv_test.csv";
  }
  void TearDown() override { std::remove(path_.c_str()); }

  void WriteFile(const std::string& content) {
    std::ofstream out(path_);
    out << content;
  }

  std::string path_;
};

TEST_F(CsvTest, LoadsAndLabelEncodes) {
  WriteFile(
      "color,size\n"
      "red,small\n"
      "blue,large\n"
      "red,large\n");
  Dataset ds = LoadCsv(path_);
  EXPECT_EQ(ds.n(), 3);
  EXPECT_EQ(ds.d(), 2);
  EXPECT_EQ(ds.attribute_name(0), "color");
  // Label encoding is order-of-first-appearance: red=0, blue=1.
  EXPECT_EQ(ds.value(0, 0), 0);
  EXPECT_EQ(ds.value(1, 0), 1);
  EXPECT_EQ(ds.value(2, 0), 0);
  EXPECT_EQ(ds.value(0, 1), 0);
  EXPECT_EQ(ds.value(1, 1), 1);
}

TEST_F(CsvTest, NoHeaderMode) {
  WriteFile("a,x\nb,y\n");
  Dataset ds = LoadCsv(path_, /*has_header=*/false);
  EXPECT_EQ(ds.n(), 2);
  EXPECT_EQ(ds.attribute_name(0), "A0");
}

TEST_F(CsvTest, TrimsWhitespaceAndSkipsEmptyLines) {
  WriteFile("h1,h2\n a , b \n\n c , d \n a , b \n");
  Dataset ds = LoadCsv(path_);
  EXPECT_EQ(ds.n(), 3);
  EXPECT_EQ(ds.value(0, 0), 0);
  EXPECT_EQ(ds.value(1, 0), 1);
  // " b " and "b" are the same trimmed cell value.
  EXPECT_EQ(ds.value(0, 1), ds.value(2, 1));
  EXPECT_NE(ds.value(0, 1), ds.value(1, 1));
}

TEST_F(CsvTest, RejectsMissingFile) {
  EXPECT_THROW(LoadCsv("/nonexistent/definitely_missing.csv"),
               InvalidArgumentError);
}

TEST_F(CsvTest, RejectsRaggedRows) {
  WriteFile("h1,h2\na,b\nc\n");
  EXPECT_THROW(LoadCsv(path_), InvalidArgumentError);
}

TEST_F(CsvTest, RejectsConstantColumn) {
  WriteFile("h1,h2\na,x\nb,x\n");
  EXPECT_THROW(LoadCsv(path_), InvalidArgumentError);
}

TEST_F(CsvTest, RejectsHeaderOnly) {
  WriteFile("h1,h2\n");
  EXPECT_THROW(LoadCsv(path_), InvalidArgumentError);
}

TEST_F(CsvTest, SaveLoadRoundTrip) {
  Dataset original = NurseryLike(1, 0.02);
  SaveCsv(original, path_);
  Dataset loaded = LoadCsv(path_);
  ASSERT_EQ(loaded.n(), original.n());
  ASSERT_EQ(loaded.d(), original.d());
  // Label encoding may permute value ids, but record equality structure is
  // preserved: two users agree on an attribute iff they agreed originally.
  for (int j = 0; j < original.d(); ++j) {
    for (int i = 1; i < std::min(200, original.n()); ++i) {
      EXPECT_EQ(original.value(i, j) == original.value(0, j),
                loaded.value(i, j) == loaded.value(0, j))
          << "i=" << i << " j=" << j;
    }
  }
}

TEST_F(CsvTest, CustomDelimiter) {
  WriteFile("h1;h2\na;x\nb;y\n");
  Dataset ds = LoadCsv(path_, true, ';');
  EXPECT_EQ(ds.n(), 2);
  EXPECT_EQ(ds.d(), 2);
}

}  // namespace
}  // namespace ldpr::data
