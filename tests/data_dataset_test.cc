#include "data/dataset.h"

#include <gtest/gtest.h>

#include "core/check.h"

namespace ldpr::data {
namespace {

Dataset SmallDataset() {
  Dataset ds({3, 2}, {"color", "flag"});
  ds.AddRecord({0, 1});
  ds.AddRecord({1, 0});
  ds.AddRecord({1, 1});
  ds.AddRecord({2, 1});
  return ds;
}

TEST(DatasetTest, BasicAccessors) {
  Dataset ds = SmallDataset();
  EXPECT_EQ(ds.n(), 4);
  EXPECT_EQ(ds.d(), 2);
  EXPECT_EQ(ds.domain_size(0), 3);
  EXPECT_EQ(ds.domain_size(1), 2);
  EXPECT_EQ(ds.attribute_name(0), "color");
  EXPECT_EQ(ds.value(2, 0), 1);
  EXPECT_EQ(ds.Record(3), (std::vector<int>{2, 1}));
  EXPECT_EQ(ds.Column(1), (std::vector<int>{1, 0, 1, 1}));
}

TEST(DatasetTest, DefaultAttributeNames) {
  Dataset ds({2, 2, 2});
  EXPECT_EQ(ds.attribute_name(0), "A0");
  EXPECT_EQ(ds.attribute_name(2), "A2");
}

TEST(DatasetTest, ValidatesConstruction) {
  EXPECT_THROW(Dataset({}), InvalidArgumentError);
  EXPECT_THROW(Dataset({1, 3}), InvalidArgumentError);
  EXPECT_THROW(Dataset({2, 2}, {"only-one"}), InvalidArgumentError);
}

TEST(DatasetTest, ValidatesRecords) {
  Dataset ds({3, 2});
  EXPECT_THROW(ds.AddRecord({0}), InvalidArgumentError);
  EXPECT_THROW(ds.AddRecord({3, 0}), InvalidArgumentError);
  EXPECT_THROW(ds.AddRecord({0, -1}), InvalidArgumentError);
  ds.AddRecord({2, 1});
  EXPECT_EQ(ds.n(), 1);
}

TEST(DatasetTest, ValidatesAccess) {
  Dataset ds = SmallDataset();
  EXPECT_THROW(ds.value(4, 0), InvalidArgumentError);
  EXPECT_THROW(ds.value(0, 2), InvalidArgumentError);
  EXPECT_THROW(ds.Column(-1), InvalidArgumentError);
  EXPECT_THROW(ds.domain_size(5), InvalidArgumentError);
}

TEST(DatasetTest, MarginalsMatchCounts) {
  Dataset ds = SmallDataset();
  auto m = ds.Marginals();
  ASSERT_EQ(m.size(), 2u);
  EXPECT_DOUBLE_EQ(m[0][0], 0.25);
  EXPECT_DOUBLE_EQ(m[0][1], 0.50);
  EXPECT_DOUBLE_EQ(m[0][2], 0.25);
  EXPECT_DOUBLE_EQ(m[1][0], 0.25);
  EXPECT_DOUBLE_EQ(m[1][1], 0.75);
}

TEST(DatasetTest, ProjectSelectsAndReorders) {
  Dataset ds = SmallDataset();
  Dataset proj = ds.Project({1, 0});
  EXPECT_EQ(proj.d(), 2);
  EXPECT_EQ(proj.domain_size(0), 2);
  EXPECT_EQ(proj.attribute_name(0), "flag");
  EXPECT_EQ(proj.Record(0), (std::vector<int>{1, 0}));
  Dataset single = ds.Project({0});
  EXPECT_EQ(single.d(), 1);
  EXPECT_EQ(single.n(), 4);
  EXPECT_THROW(ds.Project({}), InvalidArgumentError);
  EXPECT_THROW(ds.Project({2}), InvalidArgumentError);
}

TEST(DatasetTest, SubsampleKeepsValidRecords) {
  Dataset ds = SmallDataset();
  Rng rng(1);
  Dataset sub = ds.Subsample(2, rng);
  EXPECT_EQ(sub.n(), 2);
  EXPECT_EQ(sub.d(), 2);
  EXPECT_THROW(ds.Subsample(0, rng), InvalidArgumentError);
  EXPECT_THROW(ds.Subsample(5, rng), InvalidArgumentError);
}

TEST(DatasetTest, MarginalsRequireData) {
  Dataset ds({2, 2});
  EXPECT_THROW(ds.Marginals(), InvalidArgumentError);
}

}  // namespace
}  // namespace ldpr::data
