// Tests for the longitudinal drift generator (data/longitudinal): shape
// preservation, the zero- and full-drift extremes, the expected cell-change
// rate across a parameter sweep, approximate stationarity of the marginals,
// and validation.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "core/check.h"
#include "core/metrics.h"
#include "data/longitudinal.h"
#include "data/synthetic.h"

namespace ldpr::data {
namespace {

Dataset SmallBase(std::uint64_t seed) { return NurseryLike(seed, 0.1); }

TEST(LongitudinalTest, FirstRoundIsTheBase) {
  Dataset base = SmallBase(1);
  LongitudinalConfig config;
  config.rounds = 3;
  auto rounds = GenerateLongitudinal(base, config);
  ASSERT_EQ(rounds.size(), 3u);
  EXPECT_DOUBLE_EQ(CellChangeFraction(base, rounds[0]), 0.0);
  for (const Dataset& snapshot : rounds) {
    EXPECT_EQ(snapshot.n(), base.n());
    EXPECT_EQ(snapshot.domain_sizes(), base.domain_sizes());
  }
}

TEST(LongitudinalTest, ZeroDriftFreezesThePopulation) {
  Dataset base = SmallBase(2);
  LongitudinalConfig config;
  config.rounds = 5;
  config.change_probability = 0.0;
  auto rounds = GenerateLongitudinal(base, config);
  EXPECT_DOUBLE_EQ(CellChangeFraction(rounds.front(), rounds.back()), 0.0);
}

TEST(LongitudinalTest, FullDriftResamplesAlmostEveryCell) {
  Dataset base = SmallBase(3);
  LongitudinalConfig config;
  config.rounds = 2;
  config.change_probability = 1.0;
  auto rounds = GenerateLongitudinal(base, config);
  // Every cell resampled; collisions with the old value keep the change
  // fraction below 1 but far above any partial-drift level.
  const double changed = CellChangeFraction(rounds[0], rounds[1]);
  EXPECT_GT(changed, 0.5);
  EXPECT_LT(changed, 1.0);
}

// One-round change fraction matches p times the probability the resample
// differs, i.e. p * (1 - sum_v f_v^2) per attribute, averaged.
class DriftRateTest : public ::testing::TestWithParam<double> {};

TEST_P(DriftRateTest, OneRoundChangeFractionMatchesClosedForm) {
  const double p = GetParam();
  Dataset base = SmallBase(4);
  LongitudinalConfig config;
  config.rounds = 2;
  config.change_probability = p;
  config.seed = 99;
  auto rounds = GenerateLongitudinal(base, config);

  double collision = 0.0;  // mean over attributes of sum_v f_v^2
  for (const auto& marginal : base.Marginals()) {
    double sq = 0.0;
    for (double f : marginal) sq += f * f;
    collision += sq;
  }
  collision /= base.d();
  const double expected = p * (1.0 - collision);
  EXPECT_NEAR(CellChangeFraction(rounds[0], rounds[1]), expected,
              0.03 + 0.1 * expected);
}

INSTANTIATE_TEST_SUITE_P(ChangeProbabilities, DriftRateTest,
                         ::testing::Values(0.05, 0.2, 0.5, 0.9));

TEST(LongitudinalTest, MarginalsStayNearStationary) {
  // Resampling from the base marginal keeps the population distribution
  // stationary in expectation: after many rounds the marginals stay close.
  Dataset base = SmallBase(5);
  LongitudinalConfig config;
  config.rounds = 20;
  config.change_probability = 0.3;
  auto rounds = GenerateLongitudinal(base, config);
  EXPECT_LT(MseAvg(base.Marginals(), rounds.back().Marginals()), 5e-4);
}

TEST(LongitudinalTest, DriftCompoundsAcrossRounds) {
  Dataset base = SmallBase(6);
  LongitudinalConfig config;
  config.rounds = 10;
  config.change_probability = 0.1;
  auto rounds = GenerateLongitudinal(base, config);
  double prev = 0.0;
  for (int t = 1; t < config.rounds; t += 3) {
    const double changed = CellChangeFraction(rounds[0], rounds[t]);
    EXPECT_GT(changed, prev);
    // Bounded by the no-collision union bound 1 - (1 - p)^t.
    EXPECT_LE(changed, 1.0 - std::pow(1.0 - config.change_probability, t));
    prev = changed;
  }
}

TEST(LongitudinalTest, UniformShiftMovesMarginalsTowardUniform) {
  // A skewed base: the near-uniform Nursery shape leaves no room to move.
  Dataset base = AdultLike(8, 0.05);
  LongitudinalConfig config;
  config.rounds = 30;
  config.change_probability = 0.3;
  config.drift = DriftKind::kUniformShift;
  auto rounds = GenerateLongitudinal(base, config);
  std::vector<std::vector<double>> uniform;
  for (int k : base.domain_sizes()) {
    uniform.emplace_back(k, 1.0 / k);
  }
  // The final marginals are closer to uniform than the base's are, and the
  // distance to the base marginals grows with time.
  EXPECT_LT(MseAvg(uniform, rounds.back().Marginals()),
            0.25 * MseAvg(uniform, base.Marginals()));
  EXPECT_GT(MseAvg(base.Marginals(), rounds.back().Marginals()),
            MseAvg(base.Marginals(), rounds[3].Marginals()));
}

TEST(LongitudinalTest, RejectsInvalidConfig) {
  Dataset base = SmallBase(7);
  LongitudinalConfig config;
  config.rounds = 0;
  EXPECT_THROW(GenerateLongitudinal(base, config), InvalidArgumentError);
  config.rounds = 2;
  config.change_probability = -0.1;
  EXPECT_THROW(GenerateLongitudinal(base, config), InvalidArgumentError);
  config.change_probability = 1.5;
  EXPECT_THROW(GenerateLongitudinal(base, config), InvalidArgumentError);

  Dataset other({2, 2});
  other.AddRecord({0, 0});
  EXPECT_THROW(CellChangeFraction(base, other), InvalidArgumentError);
}

}  // namespace
}  // namespace ldpr::data
