#include "data/priors.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "core/check.h"
#include "data/synthetic.h"

namespace ldpr::data {
namespace {

double L1Distance(const std::vector<double>& a, const std::vector<double>& b) {
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) acc += std::abs(a[i] - b[i]);
  return acc;
}

TEST(PriorsTest, KindNames) {
  EXPECT_STREQ(PriorKindName(PriorKind::kCorrectLaplace), "Correct");
  EXPECT_STREQ(PriorKindName(PriorKind::kIncorrectDirichlet), "Incorrect-DIR");
  EXPECT_STREQ(PriorKindName(PriorKind::kIncorrectZipf), "Incorrect-ZIPF");
  EXPECT_STREQ(PriorKindName(PriorKind::kIncorrectExponential),
               "Incorrect-EXP");
  EXPECT_STREQ(PriorKindName(PriorKind::kUniform), "Uniform");
}

TEST(LaplacePerturbedHistogramTest, IsNormalizedAndNonNegative) {
  Rng rng(1);
  std::vector<double> truth{0.7, 0.2, 0.1};
  auto noisy = LaplacePerturbedHistogram(truth, 1000, 0.01, rng);
  double sum = std::accumulate(noisy.begin(), noisy.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-12);
  for (double v : noisy) EXPECT_GE(v, 0.0);
}

TEST(LaplacePerturbedHistogramTest, LargeEpsStaysClose) {
  Rng rng(2);
  std::vector<double> truth{0.6, 0.3, 0.1};
  auto noisy = LaplacePerturbedHistogram(truth, 100000, 10.0, rng);
  EXPECT_LT(L1Distance(truth, noisy), 0.01);
}

TEST(LaplacePerturbedHistogramTest, SmallEpsAddsNoise) {
  Rng rng(3);
  std::vector<double> truth{0.6, 0.3, 0.1};
  double total = 0.0;
  for (int t = 0; t < 50; ++t) {
    total += L1Distance(truth, LaplacePerturbedHistogram(truth, 100, 0.005,
                                                         rng));
  }
  EXPECT_GT(total / 50.0, 0.1);
}

TEST(LaplacePerturbedHistogramTest, Validation) {
  Rng rng(4);
  std::vector<double> truth{1.0};
  EXPECT_THROW(LaplacePerturbedHistogram(truth, 0, 1.0, rng),
               InvalidArgumentError);
  EXPECT_THROW(LaplacePerturbedHistogram(truth, 10, 0.0, rng),
               InvalidArgumentError);
}

class BuildPriorsTest : public ::testing::TestWithParam<PriorKind> {};

TEST_P(BuildPriorsTest, OnePerAttributeNormalized) {
  Dataset ds = NurseryLike(1, 0.05);
  Rng rng(5);
  auto priors = BuildPriors(ds, GetParam(), rng);
  ASSERT_EQ(static_cast<int>(priors.size()), ds.d());
  for (int j = 0; j < ds.d(); ++j) {
    ASSERT_EQ(static_cast<int>(priors[j].size()), ds.domain_size(j));
    double sum = std::accumulate(priors[j].begin(), priors[j].end(), 0.0);
    EXPECT_NEAR(sum, 1.0, 1e-9);
    for (double v : priors[j]) EXPECT_GE(v, 0.0);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, BuildPriorsTest,
    ::testing::Values(PriorKind::kCorrectLaplace, PriorKind::kIncorrectDirichlet,
                      PriorKind::kIncorrectZipf,
                      PriorKind::kIncorrectExponential, PriorKind::kUniform),
    [](const ::testing::TestParamInfo<PriorKind>& info) {
      std::string name = PriorKindName(info.param);
      for (char& c : name) {
        if (c == '-' || c == '+') c = '_';
      }
      return name;
    });

TEST(BuildPriorsTest, CorrectPriorTracksTruth) {
  Dataset ds = AcsEmploymentLike(2, 0.5);
  Rng rng(6);
  auto priors = BuildPriors(ds, PriorKind::kCorrectLaplace, rng);
  auto truth = ds.Marginals();
  // With the paper's eps = 0.1/d at ACS scale, the prior should still be a
  // recognizable (if noisy) copy of the truth.
  double total = 0.0;
  for (int j = 0; j < ds.d(); ++j) total += L1Distance(truth[j], priors[j]);
  EXPECT_LT(total / ds.d(), 0.5);
}

TEST(BuildPriorsTest, UniformPriorIsExactlyUniform) {
  Dataset ds = NurseryLike(3, 0.05);
  Rng rng(7);
  auto priors = BuildPriors(ds, PriorKind::kUniform, rng);
  for (int j = 0; j < ds.d(); ++j) {
    for (double v : priors[j]) {
      EXPECT_DOUBLE_EQ(v, 1.0 / ds.domain_size(j));
    }
  }
}

TEST(BuildPriorsTest, IncorrectPriorsDifferFromTruth) {
  Dataset ds = AcsEmploymentLike(4, 0.3);
  Rng rng(8);
  auto truth = ds.Marginals();
  for (PriorKind kind : {PriorKind::kIncorrectDirichlet,
                         PriorKind::kIncorrectZipf,
                         PriorKind::kIncorrectExponential}) {
    auto priors = BuildPriors(ds, kind, rng);
    double total = 0.0;
    for (int j = 0; j < ds.d(); ++j) total += L1Distance(truth[j], priors[j]);
    EXPECT_GT(total / ds.d(), 0.05) << PriorKindName(kind);
  }
}

}  // namespace
}  // namespace ldpr::data
