#include "data/synthetic.h"

#include <cmath>
#include <map>

#include <gtest/gtest.h>

#include "core/check.h"

namespace ldpr::data {
namespace {

/// Chi-square-like uniformity deviation: max |f_v - 1/k|.
double MaxUniformDeviation(const std::vector<double>& marginal) {
  const double uniform = 1.0 / marginal.size();
  double dev = 0.0;
  for (double f : marginal) dev = std::max(dev, std::abs(f - uniform));
  return dev;
}

TEST(SyntheticTest, AdultLikeMatchesPaperDimensions) {
  Dataset ds = AdultLike(1);
  EXPECT_EQ(ds.n(), 45222);
  EXPECT_EQ(ds.d(), 10);
  EXPECT_EQ(ds.domain_sizes(),
            (std::vector<int>{74, 7, 16, 7, 14, 6, 5, 2, 41, 2}));
}

TEST(SyntheticTest, AcsEmploymentLikeMatchesPaperDimensions) {
  Dataset ds = AcsEmploymentLike(1);
  EXPECT_EQ(ds.n(), 10336);
  EXPECT_EQ(ds.d(), 18);
  EXPECT_EQ(ds.domain_sizes(), (std::vector<int>{92, 25, 5, 2, 2, 9, 4, 5, 5,
                                                 4, 2, 18, 2, 2, 3, 9, 3, 6}));
}

TEST(SyntheticTest, NurseryLikeMatchesPaperDimensions) {
  Dataset ds = NurseryLike(1);
  EXPECT_EQ(ds.n(), 12959);
  EXPECT_EQ(ds.d(), 9);
  EXPECT_EQ(ds.domain_sizes(), (std::vector<int>{3, 5, 4, 4, 3, 2, 3, 3, 5}));
}

TEST(SyntheticTest, ScaleShrinksN) {
  Dataset ds = AdultLike(1, 0.1);
  EXPECT_NEAR(ds.n(), 4522, 2);
  Dataset tiny = AdultLike(1, 1e-9);
  EXPECT_EQ(tiny.n(), 100);  // floor
}

TEST(SyntheticTest, DeterministicPerSeed) {
  Dataset a = NurseryLike(7, 0.05);
  Dataset b = NurseryLike(7, 0.05);
  ASSERT_EQ(a.n(), b.n());
  for (int i = 0; i < a.n(); ++i) EXPECT_EQ(a.Record(i), b.Record(i));
  Dataset c = NurseryLike(8, 0.05);
  int diff = 0;
  for (int i = 0; i < a.n(); ++i) diff += (a.Record(i) != c.Record(i));
  EXPECT_GT(diff, 0);
}

TEST(SyntheticTest, CensusMarginalsAreSkewed) {
  // The census-like generators must produce clearly non-uniform marginals —
  // the property the AIF attack exploits (Section 4.3).
  Dataset ds = AcsEmploymentLike(3, 0.5);
  auto marginals = ds.Marginals();
  int skewed = 0;
  for (const auto& m : marginals) {
    if (MaxUniformDeviation(m) > 0.5 / m.size()) ++skewed;
  }
  EXPECT_GE(skewed, ds.d() / 2);
}

TEST(SyntheticTest, NurseryMarginalsAreNearUniform) {
  Dataset ds = NurseryLike(3);
  for (const auto& m : ds.Marginals()) {
    EXPECT_LT(MaxUniformDeviation(m), 0.05);
  }
}

TEST(SyntheticTest, CensusHasInterAttributeCorrelation) {
  // Mutual information between two attributes should be clearly positive in
  // the latent-mixture data and near zero in the independent Nursery data.
  auto mutual_info = [](const Dataset& ds, int a, int b) {
    const int ka = ds.domain_size(a), kb = ds.domain_size(b);
    std::vector<double> pa(ka, 0.0), pb(kb, 0.0);
    std::vector<std::vector<double>> pab(ka, std::vector<double>(kb, 0.0));
    for (int i = 0; i < ds.n(); ++i) {
      const int va = ds.value(i, a), vb = ds.value(i, b);
      pa[va] += 1.0;
      pb[vb] += 1.0;
      pab[va][vb] += 1.0;
    }
    double mi = 0.0;
    for (int x = 0; x < ka; ++x) {
      for (int y = 0; y < kb; ++y) {
        if (pab[x][y] == 0.0) continue;
        const double pj = pab[x][y] / ds.n();
        mi += pj * std::log(pj / ((pa[x] / ds.n()) * (pb[y] / ds.n())));
      }
    }
    return mi;
  };

  // Large-domain attribute pairs carry the bulk of the latent-class signal.
  Dataset census = AdultLike(5, 0.2);
  Dataset nursery = NurseryLike(5);
  EXPECT_GT(mutual_info(census, 0, 8), 0.05);
  EXPECT_GT(mutual_info(census, 1, 2), 0.005);
  EXPECT_LT(mutual_info(nursery, 1, 2), 0.01);
}

TEST(SyntheticTest, CensusHasUniqueRecords) {
  // Re-identification hinges on uniqueness; most users should be unique when
  // all 10 Adult-like attributes are combined.
  Dataset ds = AdultLike(9, 0.2);
  std::map<std::vector<int>, int> counts;
  for (int i = 0; i < ds.n(); ++i) ++counts[ds.Record(i)];
  int unique = 0;
  for (const auto& [rec, c] : counts) {
    if (c == 1) ++unique;
  }
  EXPECT_GT(static_cast<double>(unique) / ds.n(), 0.3);
}

TEST(SyntheticTest, GeneratorValidatesConfig) {
  SyntheticCensusConfig config;
  config.n = 0;
  config.domain_sizes = {2, 2};
  EXPECT_THROW(GenerateSyntheticCensus(config), InvalidArgumentError);
  config.n = 10;
  config.domain_sizes = {};
  EXPECT_THROW(GenerateSyntheticCensus(config), InvalidArgumentError);
  config.domain_sizes = {2, 2};
  config.noise = 1.5;
  EXPECT_THROW(GenerateSyntheticCensus(config), InvalidArgumentError);
  config.noise = 0.2;
  config.num_latent_classes = 0;
  EXPECT_THROW(GenerateSyntheticCensus(config), InvalidArgumentError);
}

TEST(SyntheticTest, ScaleValidation) {
  EXPECT_THROW(AdultLike(1, 0.0), InvalidArgumentError);
  EXPECT_THROW(AdultLike(1, 1025.0), InvalidArgumentError);
}

TEST(SyntheticTest, UpscalingGrowsThePopulation) {
  // scale > 1 grows the population toward deployment sizes (the fast
  // profile runs fig05 at the source paper's true ~3.2M ACSEmployment
  // users via kAcsEmploymentPaperScale).
  const Dataset ds = NurseryLike(1, 1.5);
  EXPECT_EQ(ds.n(), static_cast<int>(std::lround(kNurseryN * 1.5)));
  EXPECT_EQ(static_cast<int>(std::lround(
                kAcsEmploymentN * kAcsEmploymentPaperScale)),
            kAcsEmploymentPaperN);
}

}  // namespace
}  // namespace ldpr::data
