// Golden-output pinning (ctest label exp_smoke): the GridRunner-based
// experiment subsystem must reproduce the pre-refactor bench drivers'
// stdout byte for byte at a pinned seed/environment. The files under
// tests/golden/ were captured from the standalone driver binaries at the
// commit before the registry port, with:
//
//   LDPR_RUNS=1 LDPR_SCALE=0.02 LDPR_REIDENT_TARGETS=100
//   LDPR_GBDT_ROUNDS=2 LDPR_GBDT_DEPTH=2 LDPR_FIG01_TRIALS=500
//
// Results are thread-count independent (per-cell RNG streams), so the
// comparison holds under any LDPR_THREADS.

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "exp/emitter.h"
#include "exp/experiment.h"

#ifndef LDPR_GOLDEN_DIR
#error "compile with -DLDPR_GOLDEN_DIR=\"<path to tests/golden>\""
#endif

namespace ldpr::exp {
namespace {

std::string ReadGolden(const std::string& name) {
  const std::string path = std::string(LDPR_GOLDEN_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class ExpGoldenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ASSERT_EQ(setenv("LDPR_RUNS", "1", 1), 0);
    ASSERT_EQ(setenv("LDPR_SCALE", "0.02", 1), 0);
    ASSERT_EQ(setenv("LDPR_REIDENT_TARGETS", "100", 1), 0);
    ASSERT_EQ(setenv("LDPR_GBDT_ROUNDS", "2", 1), 0);
    ASSERT_EQ(setenv("LDPR_GBDT_DEPTH", "2", 1), 0);
    ASSERT_EQ(setenv("LDPR_FIG01_TRIALS", "500", 1), 0);
  }

  static void RunAndCompare(const std::string& name,
                            const std::string& golden_file) {
    const ExperimentSpec* spec = Registry::Instance().Find(name);
    ASSERT_NE(spec, nullptr) << name;
    std::string csv;
    CsvEmitter emitter(&csv);
    RunExperiment(*spec, emitter, RunProfile::FromEnv());
    EXPECT_EQ(csv, ReadGolden(golden_file))
        << name << " CSV output drifted from the pre-refactor driver";
  }

  /// Fast-profile pins: same environment, Fidelity::kFast. These goldens
  /// were captured from this repo's own fast path (there is no historical
  /// driver for it); they pin the closed-form RNG streams — re-pin with
  /// tools/repin_fast_goldens.sh whenever those streams change.
  static void RunAndCompareFast(const std::string& name,
                                const std::string& golden_file) {
    const ExperimentSpec* spec = Registry::Instance().Find(name);
    ASSERT_NE(spec, nullptr) << name;
    RunProfile profile = RunProfile::FromEnv();
    profile.fidelity = RunProfile::Fidelity::kFast;
    std::string csv;
    CsvEmitter emitter(&csv);
    RunExperiment(*spec, emitter, profile);
    EXPECT_EQ(csv, ReadGolden(golden_file))
        << name << " fast-profile CSV output drifted from its pin";
  }

  /// Paper-true-n fast pins: the scale override is cleared so the fast
  /// profile's own default applies — ACSEmployment at the source paper's
  /// ~3.2M users for fig05, Adult at its true 45'222 for fig16. Closed-form
  /// cells keep this cheap (the only O(n) work is synthesizing the
  /// population and building its histograms).
  static void RunAndComparePaperN(const std::string& name,
                                  const std::string& golden_file) {
    const ExperimentSpec* spec = Registry::Instance().Find(name);
    ASSERT_NE(spec, nullptr) << name;
    RunProfile profile = RunProfile::FromEnv();
    profile.fidelity = RunProfile::Fidelity::kFast;
    profile.has_scale_override = false;
    std::string csv;
    CsvEmitter emitter(&csv);
    RunExperiment(*spec, emitter, profile);
    EXPECT_EQ(csv, ReadGolden(golden_file))
        << name << " paper-n fast-profile CSV output drifted from its pin";
  }
};

// Sanitizer builds skip the paper-n pins: synthesizing the 3.2M-user
// population costs minutes under ASan and the streams are already covered
// by the scale-0.02 fast pins above.
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define LDPR_SKIP_PAPER_N 1
#elif defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define LDPR_SKIP_PAPER_N 1
#endif
#endif

TEST_F(ExpGoldenTest, Fig01BitIdentical) { RunAndCompare("fig01", "fig01.txt"); }

TEST_F(ExpGoldenTest, Fig02BitIdentical) { RunAndCompare("fig02", "fig02.txt"); }

TEST_F(ExpGoldenTest, Abl05BitIdentical) { RunAndCompare("abl05", "abl05.txt"); }

TEST_F(ExpGoldenTest, Abl10BitIdentical) { RunAndCompare("abl10", "abl10.txt"); }

TEST_F(ExpGoldenTest, Fig05FastPinned) {
  RunAndCompareFast("fig05", "fig05_fast.txt");
}

TEST_F(ExpGoldenTest, Fig16FastPinned) {
  RunAndCompareFast("fig16", "fig16_fast.txt");
}

TEST_F(ExpGoldenTest, Abl06FastPinned) {
  RunAndCompareFast("abl06", "abl06_fast.txt");
}

TEST_F(ExpGoldenTest, Abl07FastPinned) {
  RunAndCompareFast("abl07", "abl07_fast.txt");
}

TEST_F(ExpGoldenTest, Fig05FastPaperNPinned) {
#ifdef LDPR_SKIP_PAPER_N
  GTEST_SKIP() << "3.2M-user synthesis is too slow under sanitizers";
#else
  RunAndComparePaperN("fig05", "fig05_fast_papern.txt");
#endif
}

TEST_F(ExpGoldenTest, Fig16FastPaperNPinned) {
#ifdef LDPR_SKIP_PAPER_N
  GTEST_SKIP() << "paper-n pins are skipped under sanitizers";
#else
  RunAndComparePaperN("fig16", "fig16_fast_papern.txt");
#endif
}

}  // namespace
}  // namespace ldpr::exp
