// Golden-output pinning (ctest label exp_smoke): the GridRunner-based
// experiment subsystem must reproduce the pre-refactor bench drivers'
// stdout byte for byte at a pinned seed/environment. The files under
// tests/golden/ were captured from the standalone driver binaries at the
// commit before the registry port, with:
//
//   LDPR_RUNS=1 LDPR_SCALE=0.02 LDPR_REIDENT_TARGETS=100
//   LDPR_GBDT_ROUNDS=2 LDPR_GBDT_DEPTH=2 LDPR_FIG01_TRIALS=500
//
// Results are thread-count independent (per-cell RNG streams), so the
// comparison holds under any LDPR_THREADS.

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "exp/emitter.h"
#include "exp/experiment.h"

#ifndef LDPR_GOLDEN_DIR
#error "compile with -DLDPR_GOLDEN_DIR=\"<path to tests/golden>\""
#endif

namespace ldpr::exp {
namespace {

std::string ReadGolden(const std::string& name) {
  const std::string path = std::string(LDPR_GOLDEN_DIR) + "/" + name;
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "missing golden file " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class ExpGoldenTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    ASSERT_EQ(setenv("LDPR_RUNS", "1", 1), 0);
    ASSERT_EQ(setenv("LDPR_SCALE", "0.02", 1), 0);
    ASSERT_EQ(setenv("LDPR_REIDENT_TARGETS", "100", 1), 0);
    ASSERT_EQ(setenv("LDPR_GBDT_ROUNDS", "2", 1), 0);
    ASSERT_EQ(setenv("LDPR_GBDT_DEPTH", "2", 1), 0);
    ASSERT_EQ(setenv("LDPR_FIG01_TRIALS", "500", 1), 0);
  }

  static void RunAndCompare(const std::string& name,
                            const std::string& golden_file) {
    const ExperimentSpec* spec = Registry::Instance().Find(name);
    ASSERT_NE(spec, nullptr) << name;
    std::string csv;
    CsvEmitter emitter(&csv);
    RunExperiment(*spec, emitter, RunProfile::FromEnv());
    EXPECT_EQ(csv, ReadGolden(golden_file))
        << name << " CSV output drifted from the pre-refactor driver";
  }

  /// Fast-profile pins: same environment, Fidelity::kFast. These goldens
  /// were captured from this repo's own fast path (there is no historical
  /// driver for it); they pin the closed-form RNG streams — re-pin with
  /// tools/repin_fast_goldens.sh whenever those streams change.
  static void RunAndCompareFast(const std::string& name,
                                const std::string& golden_file) {
    const ExperimentSpec* spec = Registry::Instance().Find(name);
    ASSERT_NE(spec, nullptr) << name;
    RunProfile profile = RunProfile::FromEnv();
    profile.fidelity = RunProfile::Fidelity::kFast;
    std::string csv;
    CsvEmitter emitter(&csv);
    RunExperiment(*spec, emitter, profile);
    EXPECT_EQ(csv, ReadGolden(golden_file))
        << name << " fast-profile CSV output drifted from its pin";
  }
};

TEST_F(ExpGoldenTest, Fig01BitIdentical) { RunAndCompare("fig01", "fig01.txt"); }

TEST_F(ExpGoldenTest, Fig02BitIdentical) { RunAndCompare("fig02", "fig02.txt"); }

TEST_F(ExpGoldenTest, Abl05BitIdentical) { RunAndCompare("abl05", "abl05.txt"); }

TEST_F(ExpGoldenTest, Abl10BitIdentical) { RunAndCompare("abl10", "abl10.txt"); }

TEST_F(ExpGoldenTest, Fig05FastPinned) {
  RunAndCompareFast("fig05", "fig05_fast.txt");
}

TEST_F(ExpGoldenTest, Fig16FastPinned) {
  RunAndCompareFast("fig16", "fig16_fast.txt");
}

TEST_F(ExpGoldenTest, Abl06FastPinned) {
  RunAndCompareFast("abl06", "abl06_fast.txt");
}

TEST_F(ExpGoldenTest, Abl07FastPinned) {
  RunAndCompareFast("abl07", "abl07_fast.txt");
}

}  // namespace
}  // namespace ldpr::exp
