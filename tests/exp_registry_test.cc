// Structural tests for the experiment subsystem: registry invariants (every
// scenario registered exactly once, with metadata), the glob matcher, the
// emitters, the grid runner's determinism contract, and the memoized
// dataset cache. End-to-end smoke runs live in exp_smoke_test (ctest label
// exp_smoke); pinned-output checks in exp_golden_test.

#include <cmath>
#include <cstdlib>
#include <set>
#include <string>

#include <gtest/gtest.h>

#include "data/synthetic.h"
#include "exp/datasets.h"
#include "exp/emitter.h"
#include "exp/experiment.h"
#include "exp/grid_runner.h"
#include "exp/grids.h"
#include "exp/profile.h"

namespace ldpr::exp {
namespace {

TEST(ExpRegistry, EveryExperimentHasUniqueNameAndMetadata) {
  const auto all = Registry::Instance().All();
  ASSERT_GE(all.size(), 30u) << "acceptance gate: >= 30 registered scenarios";

  std::set<std::string> names;
  std::set<std::string> titles;
  for (const ExperimentSpec* spec : all) {
    EXPECT_TRUE(names.insert(spec->name).second)
        << "duplicate name " << spec->name;
    EXPECT_TRUE(titles.insert(spec->title).second)
        << "duplicate title " << spec->title;
    EXPECT_FALSE(spec->description.empty()) << spec->name;
    EXPECT_TRUE(spec->group == "figure" || spec->group == "ablation" ||
                spec->group == "framework" || spec->group == "related" ||
                spec->group == "serving")
        << spec->name << " group '" << spec->group << "'";
    EXPECT_NE(spec->run, nullptr) << spec->name;
  }
}

TEST(ExpRegistry, CoversAllPaperFamilies) {
  const auto& registry = Registry::Instance();
  EXPECT_EQ(registry.Match("fig*").size(), 16u);
  EXPECT_EQ(registry.Match("abl*").size(), 11u);
  EXPECT_EQ(registry.Match("fw*").size(), 6u);
}

TEST(ExpRegistry, FindAndMatch) {
  const auto& registry = Registry::Instance();
  ASSERT_NE(registry.Find("fig02"), nullptr);
  EXPECT_EQ(registry.Find("fig02")->title, "fig02_smp_reident_adult");
  EXPECT_EQ(registry.Find("nope"), nullptr);

  // Matching works on both the short name and the legacy title.
  EXPECT_EQ(registry.Match("fig02").size(), 1u);
  EXPECT_EQ(registry.Match("fig02_smp_reident_adult").size(), 1u);
  EXPECT_EQ(registry.Match("*reident*").size(), registry.Match("fig02").size() +
                                                    registry.Match("fig04").size() +
                                                    registry.Match("fig09").size() +
                                                    registry.Match("fig10").size() +
                                                    registry.Match("fig11").size() +
                                                    registry.Match("fig12").size() +
                                                    registry.Match("fig13").size() +
                                                    registry.Match("abl03").size() +
                                                    registry.Match("fw01").size());

  // Sorted by name.
  const auto figs = registry.Match("fig0?");
  ASSERT_GE(figs.size(), 2u);
  for (std::size_t i = 1; i < figs.size(); ++i) {
    EXPECT_LT(figs[i - 1]->name, figs[i]->name);
  }
}

TEST(ExpGlob, Matching) {
  EXPECT_TRUE(GlobMatch("*", ""));
  EXPECT_TRUE(GlobMatch("fig*", "fig02"));
  EXPECT_TRUE(GlobMatch("*adult*", "fig02_smp_reident_adult"));
  EXPECT_TRUE(GlobMatch("fig0?", "fig02"));
  EXPECT_FALSE(GlobMatch("fig0?", "fig10"));
  EXPECT_FALSE(GlobMatch("fig", "fig02"));
  EXPECT_TRUE(GlobMatch("a*b*c", "axxbxxc"));
  EXPECT_FALSE(GlobMatch("a*b*c", "axxcxxb"));
}

TEST(ExpEmitter, CsvReplaysLegacyFormat) {
  std::string out;
  CsvEmitter csv(&out);
  csv.Comment("# bench = demo");
  TableSpec spec;
  spec.section = "protocol = GRR";
  spec.header = "epsilon   value";
  spec.x_name = "epsilon";
  spec.columns = {"value"};
  csv.BeginTable(spec);
  csv.Row({Cell::Number("%-8.1f", 1.0), Cell::Number(" %8.4f", 12.5)});
  EXPECT_EQ(out,
            "# bench = demo\n"
            "\n## protocol = GRR\n"
            "epsilon   value\n"
            "1.0       12.5000\n");
}

TEST(ExpEmitter, JsonCarriesConfigAndStructuredRows) {
  std::string json;
  JsonEmitter emitter(&json, "demo");
  emitter.Config("runs", "3");
  emitter.Comment("# n = 42");
  TableSpec spec;
  spec.section = "panel";
  spec.x_name = "epsilon";
  spec.columns = {"acc"};
  emitter.BeginTable(spec);
  emitter.Row({Cell::Number("%-8.1f", 2.0), Cell::Number(" %8.4f", 0.25)});
  emitter.Row({Cell::Text("%-8s", "label"), Cell::Number(" %8.4f", 0.5)});
  emitter.Finish();
  EXPECT_NE(json.find("\"experiment\":\"demo\""), std::string::npos);
  EXPECT_NE(json.find("\"runs\":\"3\""), std::string::npos);
  EXPECT_NE(json.find("\"n = 42\""), std::string::npos);
  EXPECT_NE(json.find("\"columns\":[\"acc\"]"), std::string::npos);
  EXPECT_NE(json.find("[2,0.25]"), std::string::npos);
  EXPECT_NE(json.find("[\"label\",0.5]"), std::string::npos);
}

TEST(ExpEmitter, TeeFansOut) {
  std::string a;
  std::string b;
  CsvEmitter csv_a(&a);
  CsvEmitter csv_b(&b);
  TeeEmitter tee;
  tee.Add(&csv_a);
  tee.Add(&csv_b);
  tee.Comment("# hello");
  EXPECT_EQ(a, b);
  EXPECT_EQ(a, "# hello\n");
}

TEST(ExpGridRunner, MeansMatchSerialLoopAndThreadCount) {
  auto cell = [](int point, int trial) {
    // Any deterministic function of (point, trial).
    return std::vector<double>{point + 0.25 * trial, point * 10.0 + trial};
  };
  std::vector<std::vector<double>> expected(4, std::vector<double>(2, 0.0));
  for (int p = 0; p < 4; ++p) {
    for (int t = 0; t < 3; ++t) {
      const auto v = cell(p, t);
      expected[p][0] += v[0];
      expected[p][1] += v[1];
    }
    expected[p][0] /= 3;
    expected[p][1] /= 3;
  }

  ASSERT_EQ(setenv("LDPR_THREADS", "1", 1), 0);
  const auto serial = RunGrid(4, 3, 2, cell);
  ASSERT_EQ(setenv("LDPR_THREADS", "4", 1), 0);
  const auto parallel = RunGrid(4, 3, 2, cell);
  ASSERT_EQ(unsetenv("LDPR_THREADS"), 0);

  ASSERT_EQ(serial.size(), 4u);
  for (int p = 0; p < 4; ++p) {
    for (int c = 0; c < 2; ++c) {
      EXPECT_DOUBLE_EQ(serial[p][c], expected[p][c]);
      EXPECT_DOUBLE_EQ(parallel[p][c], expected[p][c]);
    }
  }
}

TEST(ExpGridRunner, SplitStreamMatchesLegacySplitSequence) {
  // The legacy drivers split one root per grid point, handing trial t the
  // t-th child. SplitStream must reproduce that stream exactly.
  Rng root(1234);
  Rng s0 = root.Split();
  Rng s1 = root.Split();
  Rng s2 = root.Split();

  Rng f0 = SplitStream(1234, 0);
  Rng f1 = SplitStream(1234, 1);
  Rng f2 = SplitStream(1234, 2);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(s0(), f0());
    EXPECT_EQ(s1(), f1());
    EXPECT_EQ(s2(), f2());
  }
}

TEST(ExpProfile, SmokeShrinksEverything) {
  const RunProfile smoke = RunProfile::Smoke();
  EXPECT_TRUE(smoke.smoke);
  EXPECT_EQ(smoke.runs, 1);
  EXPECT_LE(smoke.Grid(EpsilonGrid()).size(), smoke.grid_cap);
  EXPECT_EQ(smoke.Count(5, 3), 3);
  EXPECT_EQ(smoke.Mc("LDPR_FIG01_TRIALS", 20000, 500), 500);
  EXPECT_LT(smoke.BenchScale(), 0.2);
  const auto few = smoke.Shortlist(std::vector<int>{1, 2, 3, 4, 5});
  EXPECT_EQ(few.size(), smoke.shortlist_cap);
}

TEST(ExpProfile, FromEnvReadsKnobs) {
  ASSERT_EQ(setenv("LDPR_RUNS", "7", 1), 0);
  ASSERT_EQ(setenv("LDPR_SCALE", "0.33", 1), 0);
  const RunProfile profile = RunProfile::FromEnv();
  EXPECT_EQ(profile.runs, 7);
  EXPECT_DOUBLE_EQ(profile.BenchScale(), 0.33);
  EXPECT_DOUBLE_EQ(profile.Scale(1.0), 0.33);  // env overrides any default
  ASSERT_EQ(unsetenv("LDPR_RUNS"), 0);
  ASSERT_EQ(unsetenv("LDPR_SCALE"), 0);
  const RunProfile defaults = RunProfile::FromEnv();
  EXPECT_EQ(defaults.runs, 3);
  EXPECT_DOUBLE_EQ(defaults.BenchScale(), 0.2);
  EXPECT_DOUBLE_EQ(defaults.Scale(1.0), 1.0);
}

TEST(ExpDatasets, MemoizesByKindSeedAndScale) {
  ClearDatasetCache();
  const data::Dataset& a = GetDataset(DatasetKind::kNursery, 7, 0.01);
  const data::Dataset& b = GetDataset(DatasetKind::kNursery, 7, 0.01);
  EXPECT_EQ(&a, &b) << "same key must be served from cache";
  EXPECT_EQ(DatasetCacheSize(), 1);

  const data::Dataset& c = GetDataset(DatasetKind::kNursery, 8, 0.01);
  const data::Dataset& d = GetDataset(DatasetKind::kNursery, 7, 0.02);
  EXPECT_NE(&a, &c);
  EXPECT_NE(&a, &d);
  EXPECT_EQ(DatasetCacheSize(), 3);

  // Memoized construction returns the same data as a direct build.
  const data::Dataset direct = data::NurseryLike(7, 0.01);
  ASSERT_EQ(a.n(), direct.n());
  ASSERT_EQ(a.d(), direct.d());
  for (int i = 0; i < a.n(); ++i) {
    for (int j = 0; j < a.d(); ++j) {
      ASSERT_EQ(a.value(i, j), direct.value(i, j));
    }
  }
  ClearDatasetCache();
}

}  // namespace
}  // namespace ldpr::exp
