// End-to-end smoke pass over the experiment registry (ctest label
// exp_smoke): every registered scenario must run at the Smoke() preset and
// emit well-formed output — at least one table, at least one row per table,
// every row carrying the declared columns with finite numbers — through
// both the CSV and the JSON writers.

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "exp/emitter.h"
#include "exp/experiment.h"

namespace ldpr::exp {
namespace {

/// Records the structured event stream for inspection.
class RecordingEmitter : public Emitter {
 public:
  struct Table {
    TableSpec spec;
    std::vector<std::vector<Cell>> rows;
  };

  void Comment(const std::string& line) override { comments.push_back(line); }
  void Text(const std::string& line) override { text.push_back(line); }
  void BeginTable(const TableSpec& spec) override {
    tables.push_back({spec, {}});
  }
  void Row(const std::vector<Cell>& cells) override {
    ASSERT_FALSE(tables.empty()) << "Row emitted before any BeginTable";
    tables.back().rows.push_back(cells);
  }

  std::vector<std::string> comments;
  std::vector<std::string> text;
  std::vector<Table> tables;
};

TEST(ExpSmoke, EveryExperimentRunsAndEmitsWellFormedRows) {
  const RunProfile profile = RunProfile::Smoke();
  for (const ExperimentSpec* spec : Registry::Instance().All()) {
    SCOPED_TRACE(spec->name);

    RecordingEmitter recording;
    std::string csv;
    CsvEmitter csv_emitter(&csv);
    std::string json;
    JsonEmitter json_emitter(&json, spec->name);
    TeeEmitter tee;
    tee.Add(&recording);
    tee.Add(&csv_emitter);
    tee.Add(&json_emitter);

    ASSERT_NO_THROW(RunExperiment(*spec, tee, profile)) << spec->name;

    EXPECT_FALSE(csv.empty());
    EXPECT_EQ(csv.back(), '\n');
    ASSERT_FALSE(recording.tables.empty())
        << spec->name << " emitted no tables";
    for (const auto& table : recording.tables) {
      ASSERT_FALSE(table.rows.empty())
          << spec->name << " table '" << table.spec.section << "' is empty";
      EXPECT_FALSE(table.spec.x_name.empty());
      for (const auto& row : table.rows) {
        // Row = x cell + the declared columns (a few scenarios append
        // extras, e.g. fig07_08's trial counts — never fewer).
        ASSERT_GE(row.size(), 1 + table.spec.columns.size());
        for (const Cell& cell : row) {
          EXPECT_FALSE(cell.text.empty());
          if (cell.is_number) {
            EXPECT_TRUE(std::isfinite(cell.number))
                << "non-finite value in " << spec->name;
          }
        }
      }
    }

    // The JSON document must be complete and balanced.
    ASSERT_FALSE(json.empty());
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
    EXPECT_NE(json.find("\"experiment\":\"" + spec->name + "\""),
              std::string::npos);
    EXPECT_NE(json.find("\"tables\":["), std::string::npos);
  }
}

}  // namespace
}  // namespace ldpr::exp
