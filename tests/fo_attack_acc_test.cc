#include "fo/analytic_acc.h"

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "attack/plausible_deniability.h"
#include "core/check.h"
#include "fo/factory.h"

namespace ldpr::fo {
namespace {

// ---------------------------------------------------------------------------
// Closed-form values (spot checks against hand computation).
// ---------------------------------------------------------------------------

TEST(ExpectedAttackAccTest, GrrClosedForm) {
  const double e = std::exp(2.0);
  EXPECT_NEAR(ExpectedAttackAcc(Protocol::kGrr, 2.0, 10), e / (e + 9.0),
              1e-12);
}

TEST(ExpectedAttackAccTest, OlhClosedForm) {
  // Large k: 1 / (2 k / (e^eps + 1)).
  const double e = std::exp(1.0);
  EXPECT_NEAR(ExpectedAttackAcc(Protocol::kOlh, 1.0, 100),
              (e + 1.0) / 200.0, 1e-12);
  // Small k: capped at 1/2.
  EXPECT_NEAR(ExpectedAttackAcc(Protocol::kOlh, 5.0, 4), 0.5, 1e-12);
}

TEST(ExpectedAttackAccTest, SsClosedForm) {
  const double e = std::exp(1.0);
  EXPECT_NEAR(ExpectedAttackAcc(Protocol::kSs, 1.0, 100), (e + 1.0) / 200.0,
              1e-12);
  // Small domain: clamped by the omega = 1 (GRR-like) value.
  EXPECT_NEAR(ExpectedAttackAcc(Protocol::kSs, 5.0, 4),
              std::exp(5.0) / (std::exp(5.0) + 3.0), 1e-12);
}

TEST(ExpectedAttackAccTest, UeGenericFormulaSanity) {
  // k = 2, p = 1, q = 0: deterministic one-hot, attacker always right.
  EXPECT_NEAR(ExpectedUeAttackAcc(1.0 - 1e-12, 1e-12, 2), 1.0, 1e-6);
  // p = q would be rejected.
  EXPECT_THROW(ExpectedUeAttackAcc(0.3, 0.3, 5), InvalidArgumentError);
  EXPECT_THROW(ExpectedUeAttackAcc(0.7, 0.1, 1), InvalidArgumentError);
}

TEST(ExpectedAttackAccTest, MonotoneInEpsilon) {
  for (Protocol p : AllProtocols()) {
    double prev = 0.0;
    for (double eps = 0.5; eps <= 10.0; eps += 0.5) {
      double acc = ExpectedAttackAcc(p, eps, 16);
      EXPECT_GE(acc, prev - 1e-9) << ProtocolName(p) << " eps=" << eps;
      prev = acc;
    }
  }
}

TEST(ExpectedAttackAccTest, DecreasingInDomainSize) {
  for (Protocol p : AllProtocols()) {
    double prev = 1.0;
    for (int k : {2, 4, 8, 16, 64}) {
      double acc = ExpectedAttackAcc(p, 1.0, k);
      EXPECT_LE(acc, prev + 1e-9) << ProtocolName(p) << " k=" << k;
      prev = acc;
    }
  }
}

TEST(ExpectedAttackAccTest, PaperOrderingAtFigure1Parameters) {
  // Fig. 1 shape: GRR and SS highest throughout; OUE and OLH plateau; SUE
  // starts below OUE but crosses above it in the high-eps regime (the paper
  // shows the crossover between eps = 5 and 6).
  const std::vector<int> k{74, 7, 16};
  for (double eps : {4.0, 7.0, 10.0}) {
    double grr = ExpectedAccUniform(Protocol::kGrr, eps, k);
    double ss = ExpectedAccUniform(Protocol::kSs, eps, k);
    double sue = ExpectedAccUniform(Protocol::kSue, eps, k);
    double oue = ExpectedAccUniform(Protocol::kOue, eps, k);
    double olh = ExpectedAccUniform(Protocol::kOlh, eps, k);
    EXPECT_GT(grr, sue);
    EXPECT_GT(ss, oue);
    EXPECT_GT(grr, olh);
  }
  EXPECT_LT(ExpectedAccUniform(Protocol::kSue, 4.0, k),
            ExpectedAccUniform(Protocol::kOue, 4.0, k));
  EXPECT_GT(ExpectedAccUniform(Protocol::kSue, 7.0, k),
            ExpectedAccUniform(Protocol::kOue, 7.0, k));
  EXPECT_GT(ExpectedAccUniform(Protocol::kSue, 10.0, k),
            ExpectedAccUniform(Protocol::kOue, 10.0, k));
}

TEST(ExpectedAccTest, NonUniformBelowUniform) {
  // Eq. 5 multiplies each factor by (d+1-j)/d <= 1, so ACC_NU <= ACC_U.
  const std::vector<int> k{74, 7, 16};
  for (Protocol p : AllProtocols()) {
    for (double eps : {1.0, 5.0, 10.0}) {
      EXPECT_LE(ExpectedAccNonUniform(p, eps, k),
                ExpectedAccUniform(p, eps, k) + 1e-12);
    }
  }
}

TEST(ExpectedAccTest, NonUniformFactorIsFactorial) {
  // The product of (d+1-j)/d over j=1..d is d!/d^d.
  const std::vector<int> k{5, 5, 5};
  double u = ExpectedAccUniform(Protocol::kGrr, 2.0, k);
  double nu = ExpectedAccNonUniform(Protocol::kGrr, 2.0, k);
  EXPECT_NEAR(nu / u, 6.0 / 27.0, 1e-12);
}

TEST(ExpectedAccTest, Validation) {
  EXPECT_THROW(ExpectedAttackAcc(Protocol::kGrr, 0.0, 5),
               InvalidArgumentError);
  EXPECT_THROW(ExpectedAttackAcc(Protocol::kGrr, 1.0, 1),
               InvalidArgumentError);
  EXPECT_THROW(ExpectedAccUniform(Protocol::kGrr, 1.0, {}),
               InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// Closed forms versus Monte-Carlo simulation of the actual attack.
// ---------------------------------------------------------------------------

using ParamTuple = std::tuple<Protocol, double, int>;

class AttackAccMonteCarloTest : public ::testing::TestWithParam<ParamTuple> {};

TEST_P(AttackAccMonteCarloTest, ClosedFormMatchesSimulation) {
  auto [protocol, eps, k] = GetParam();
  auto oracle = MakeOracle(protocol, k, eps);
  Rng rng(4242 + k * 10 + static_cast<int>(eps));
  const int trials = 60000;
  double mc = attack::MonteCarloAttackAcc(*oracle, trials, rng);
  double analytic = ExpectedAttackAcc(protocol, eps, k);
  if (protocol == Protocol::kOlh) {
    // The paper's OLH closed form idealizes the hash preimage as exactly
    // k/g values and ignores the empty-preimage fallback; assert agreement
    // up to a constant factor.
    EXPECT_GT(mc, 0.6 * analytic) << "eps=" << eps << " k=" << k;
    EXPECT_LT(mc, 1.6 * analytic) << "eps=" << eps << " k=" << k;
    return;
  }
  // 5-sigma binomial tolerance plus slack for the SS rounding of omega,
  // which the closed form idealizes as fractional.
  double tol = 5.0 * std::sqrt(analytic * (1.0 - analytic) / trials) + 0.04;
  EXPECT_NEAR(mc, analytic, tol)
      << ProtocolName(protocol) << " eps=" << eps << " k=" << k;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, AttackAccMonteCarloTest,
    ::testing::Combine(::testing::Values(Protocol::kGrr, Protocol::kOlh,
                                         Protocol::kSs, Protocol::kSue,
                                         Protocol::kOue),
                       ::testing::Values(1.0, 2.0, 6.0),
                       ::testing::Values(7, 16, 74)),
    [](const ::testing::TestParamInfo<ParamTuple>& info) {
      return std::string(ProtocolName(std::get<0>(info.param))) + "_eps" +
             std::to_string(static_cast<int>(std::get<1>(info.param))) +
             "_k" + std::to_string(std::get<2>(info.param));
    });

// ---------------------------------------------------------------------------
// Multi-collection profiling accuracy (Eqs. 4 and 5) versus simulation.
// ---------------------------------------------------------------------------

class ProfilingAccTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(ProfilingAccTest, UniformMetricMatchesEq4) {
  const Protocol protocol = GetParam();
  const std::vector<int> k{4, 3, 5};
  const double eps = 4.0;
  Rng rng(11);
  double analytic = ExpectedAccUniform(protocol, eps, k);
  double simulated = attack::MonteCarloProfileAcc(protocol, eps, k,
                                                  /*uniform_metric=*/true,
                                                  60000, rng);
  if (protocol == Protocol::kOlh) {
    // The paper's OLH closed form ignores the empty-preimage fallback, which
    // matters for small k; assert the right order of magnitude only.
    EXPECT_GT(simulated, 0.4 * analytic);
    EXPECT_LT(simulated, 2.5 * analytic);
    return;
  }
  double tol =
      5.0 * std::sqrt(analytic * (1.0 - analytic) / 60000.0) + 0.025;
  EXPECT_NEAR(simulated, analytic, tol) << ProtocolName(protocol);
}

TEST_P(ProfilingAccTest, NonUniformMetricMatchesEq5) {
  const Protocol protocol = GetParam();
  const std::vector<int> k{4, 3, 5};
  const double eps = 4.0;
  Rng rng(13);
  double analytic = ExpectedAccNonUniform(protocol, eps, k);
  double simulated = attack::MonteCarloProfileAcc(protocol, eps, k,
                                                  /*uniform_metric=*/false,
                                                  60000, rng);
  if (protocol == Protocol::kOlh) {
    EXPECT_GT(simulated, 0.4 * analytic);
    EXPECT_LT(simulated, 2.5 * analytic);
    return;
  }
  double tol =
      5.0 * std::sqrt(analytic * (1.0 - analytic) / 60000.0) + 0.025;
  EXPECT_NEAR(simulated, analytic, tol) << ProtocolName(protocol);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, ProfilingAccTest,
                         ::testing::ValuesIn(AllProtocols()),
                         [](const ::testing::TestParamInfo<Protocol>& info) {
                           return ProtocolName(info.param);
                         });

}  // namespace
}  // namespace ldpr::fo
