// Exactness of the batched collection pipeline (satellite 1 of the batched
// randomize/aggregate issue): for every protocol, the three batched paths —
// BatchRandomize into an Aggregator sink, fused Aggregator::AccumulateValue,
// and EstimateFrequencies (which now runs on the aggregator) — must be
// bit-identical to the scalar Randomize + AccumulateSupport loop for a fixed
// seed, including the RNG stream they leave behind; and merging K shard
// aggregators must equal one aggregator over the concatenated input.

#include <gtest/gtest.h>

#include "core/rng.h"
#include "fo/factory.h"

namespace ldpr::fo {
namespace {

constexpr std::uint64_t kSeed = 0xBA7C4ED5EEDULL;
constexpr int kDomain = 23;
constexpr double kEpsilon = 1.2;
constexpr int kUsers = 600;

std::vector<int> TestValues(int n, int k) {
  // Deterministic skewed mix covering the whole domain.
  std::vector<int> values(n);
  for (int i = 0; i < n; ++i) values[i] = (i * i + i / 3) % k;
  return values;
}

class BatchExactTest : public ::testing::TestWithParam<Protocol> {};

// Scalar reference: the historical per-user loop.
std::vector<long long> ScalarCounts(const FrequencyOracle& oracle,
                                    const std::vector<int>& values, Rng& rng) {
  std::vector<long long> counts(oracle.k(), 0);
  for (int v : values) {
    Report r = oracle.Randomize(v, rng);
    oracle.AccumulateSupport(r, &counts);
  }
  return counts;
}

TEST_P(BatchExactTest, BatchRandomizeSinkMatchesScalarBitwise) {
  auto oracle = MakeOracle(GetParam(), kDomain, kEpsilon);
  const std::vector<int> values = TestValues(kUsers, kDomain);

  Rng scalar_rng(kSeed);
  const std::vector<long long> expected =
      ScalarCounts(*oracle, values, scalar_rng);

  Rng batch_rng(kSeed);
  auto agg = oracle->MakeAggregator();
  oracle->BatchRandomize(values, batch_rng,
                         [&](const Report& r) { agg->Accumulate(r); });

  EXPECT_EQ(agg->counts(), expected);
  EXPECT_EQ(agg->n(), kUsers);
  // Both paths must also have consumed the generator identically.
  EXPECT_EQ(scalar_rng(), batch_rng());
}

TEST_P(BatchExactTest, FusedAccumulateValueMatchesScalarBitwise) {
  auto oracle = MakeOracle(GetParam(), kDomain, kEpsilon);
  const std::vector<int> values = TestValues(kUsers, kDomain);

  Rng scalar_rng(kSeed);
  const std::vector<long long> expected =
      ScalarCounts(*oracle, values, scalar_rng);

  Rng fused_rng(kSeed);
  auto agg = oracle->MakeAggregator();
  agg->AccumulateValues(values, fused_rng);

  EXPECT_EQ(agg->counts(), expected);
  EXPECT_EQ(scalar_rng(), fused_rng());

  // Identical counts imply identical (not just close) estimates.
  Rng est_rng(kSeed);
  const std::vector<double> est = oracle->EstimateFrequencies(values, est_rng);
  const std::vector<double> expected_est =
      oracle->EstimateFromCounts(expected, kUsers);
  EXPECT_EQ(est, expected_est);
}

TEST_P(BatchExactTest, MergeOfShardsEqualsOneAggregator) {
  auto oracle = MakeOracle(GetParam(), kDomain, kEpsilon);
  const std::vector<int> values = TestValues(kUsers, kDomain);

  Rng whole_rng(kSeed);
  auto whole = oracle->MakeAggregator();
  whole->AccumulateValues(values, whole_rng);

  // Same stream, split across K = 4 uneven shards (one of them empty).
  Rng shard_rng(kSeed);
  const std::size_t cuts[] = {0, 117, 117, 400, values.size()};
  auto merged = oracle->MakeAggregator();
  for (int s = 0; s + 1 < 5; ++s) {
    auto part = oracle->MakeAggregator();
    part->AccumulateValues(values.data() + cuts[s], cuts[s + 1] - cuts[s],
                           shard_rng);
    merged->Merge(*part);
  }

  EXPECT_EQ(merged->counts(), whole->counts());
  EXPECT_EQ(merged->n(), whole->n());
  EXPECT_EQ(merged->Estimate(), whole->Estimate());
}

TEST_P(BatchExactTest, ReusedSinkReportIsValidPerCall) {
  // The sink's Report is scratch memory: every call must carry a
  // well-formed report for this protocol (AccumulateSupport validates).
  auto oracle = MakeOracle(GetParam(), kDomain, kEpsilon);
  const std::vector<int> values = TestValues(kUsers, kDomain);
  Rng rng(kSeed);
  std::vector<long long> counts(kDomain, 0);
  long long calls = 0;
  oracle->BatchRandomize(values, rng, [&](const Report& r) {
    oracle->AccumulateSupport(r, &counts);
    ++calls;
  });
  EXPECT_EQ(calls, kUsers);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, BatchExactTest,
                         ::testing::ValuesIn(AllProtocols()),
                         [](const auto& info) {
                           return std::string(ProtocolName(info.param));
                         });

}  // namespace
}  // namespace ldpr::fo
