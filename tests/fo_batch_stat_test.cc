// Statistical validation of the closed-form batched aggregation (satellite 2
// of the batched randomize/aggregate issue): for each protocol at n = 100k
// users, the batched estimator must be unbiased and its empirical variance
// must match the analytic Eq. 7-style variance from
// FrequencyOracle::EstimatorVariance. The closed-form path draws O(k) RNG
// values per run instead of O(n), which is what makes a few hundred
// repetitions at n = 100k affordable inside a unit test.

#include <cmath>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/sampling.h"
#include "fo/factory.h"
#include "fo/grr.h"

namespace ldpr::fo {
namespace {

constexpr int kDomain = 16;
constexpr double kEpsilon = 1.0;
constexpr long long kUsers = 100000;
constexpr int kRuns = 240;

/// Skewed true histogram over kUsers users (sums exactly to kUsers).
std::vector<long long> TrueHistogram() {
  const std::vector<double> f = ZipfDistribution(kDomain, 1.3);
  std::vector<long long> hist(kDomain, 0);
  long long assigned = 0;
  for (int v = 0; v + 1 < kDomain; ++v) {
    hist[v] = static_cast<long long>(f[v] * kUsers);
    assigned += hist[v];
  }
  hist[kDomain - 1] = kUsers - assigned;
  return hist;
}

std::vector<double> TrueFrequencies(const std::vector<long long>& hist) {
  std::vector<double> f(hist.size());
  for (std::size_t v = 0; v < hist.size(); ++v) {
    f[v] = static_cast<double>(hist[v]) / kUsers;
  }
  return f;
}

class BatchStatTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(BatchStatTest, ClosedFormEstimatorIsUnbiasedAndMatchesVariance) {
  auto oracle = MakeOracle(GetParam(), kDomain, kEpsilon);
  const std::vector<long long> hist = TrueHistogram();
  const std::vector<double> truth = TrueFrequencies(hist);

  Rng root(20260725);
  std::vector<std::vector<double>> runs(kRuns);
  for (int r = 0; r < kRuns; ++r) {
    Rng rng = root.Fork(r);
    auto agg = oracle->MakeAggregator();
    agg->AccumulateHistogram(hist, rng);
    ASSERT_EQ(agg->n(), kUsers);
    runs[r] = agg->Estimate();
  }

  for (int v = 0; v < kDomain; ++v) {
    const double analytic_var = oracle->EstimatorVariance(kUsers, truth[v]);
    const double analytic_sd = std::sqrt(analytic_var);

    double mean = 0.0;
    for (const auto& run : runs) mean += run[v];
    mean /= kRuns;

    // Unbiasedness: the mean of kRuns estimates has sd = analytic_sd /
    // sqrt(kRuns); 4.5 sigma keeps the false-failure rate negligible across
    // the 5 protocols x 16 cells of this suite.
    EXPECT_NEAR(mean, truth[v], 4.5 * analytic_sd / std::sqrt(kRuns))
        << ProtocolName(GetParam()) << " biased at value " << v;

    double var = 0.0;
    for (const auto& run : runs) {
      var += (run[v] - mean) * (run[v] - mean);
    }
    var /= (kRuns - 1);

    // Variance match: s^2 / sigma^2 concentrates around 1 with sd about
    // sqrt(2 / (kRuns - 1)) ~ 0.09 for near-normal estimates.
    EXPECT_GT(var, 0.55 * analytic_var)
        << ProtocolName(GetParam()) << " variance too small at value " << v;
    EXPECT_LT(var, 1.55 * analytic_var)
        << ProtocolName(GetParam()) << " variance too large at value " << v;
  }
}

TEST_P(BatchStatTest, ClosedFormChiSquaredResidualsAreCalibrated) {
  // Standardized residuals z = (est - f) / sd pooled over runs and cells
  // should behave like chi-squared draws: their squared sum over R runs has
  // mean R and sd sqrt(2R) when the closed-form path reproduces both the
  // location and the scale of the scalar estimator's distribution.
  auto oracle = MakeOracle(GetParam(), kDomain, kEpsilon);
  const std::vector<long long> hist = TrueHistogram();
  const std::vector<double> truth = TrueFrequencies(hist);

  Rng root(77007);
  const int probe_values[] = {0, kDomain / 2, kDomain - 1};
  for (int v : probe_values) {
    const double sd =
        std::sqrt(oracle->EstimatorVariance(kUsers, truth[v]));
    double chi2 = 0.0;
    for (int r = 0; r < kRuns; ++r) {
      Rng rng = root.Split();
      auto agg = oracle->MakeAggregator();
      agg->AccumulateHistogram(hist, rng);
      const double z = (agg->Estimate()[v] - truth[v]) / sd;
      chi2 += z * z;
    }
    EXPECT_NEAR(chi2, kRuns, 5.5 * std::sqrt(2.0 * kRuns))
        << ProtocolName(GetParam()) << " miscalibrated at value " << v;
  }
}

TEST_P(BatchStatTest, StreamingAndClosedFormAgreeInDistribution) {
  // Cheap two-sample check: means of the two paths across a few runs land
  // within a joint tolerance derived from the analytic variance.
  auto oracle = MakeOracle(GetParam(), kDomain, kEpsilon);
  const std::vector<long long> hist = TrueHistogram();
  const std::vector<double> truth = TrueFrequencies(hist);
  std::vector<int> values;
  values.reserve(kUsers);
  for (int v = 0; v < kDomain; ++v) {
    values.insert(values.end(), hist[v], v);
  }

  constexpr int kPairRuns = 8;
  Rng root(431);
  const int probe = 1;  // high-frequency cell
  double streaming_mean = 0.0, closed_mean = 0.0;
  for (int r = 0; r < kPairRuns; ++r) {
    Rng rng_a = root.Fork(2 * r);
    auto streaming = oracle->MakeAggregator();
    streaming->AccumulateValues(values, rng_a);
    streaming_mean += streaming->Estimate()[probe];

    Rng rng_b = root.Fork(2 * r + 1);
    auto closed = oracle->MakeAggregator();
    closed->AccumulateHistogram(hist, rng_b);
    closed_mean += closed->Estimate()[probe];
  }
  streaming_mean /= kPairRuns;
  closed_mean /= kPairRuns;
  const double sd = std::sqrt(oracle->EstimatorVariance(kUsers, truth[probe]) /
                              kPairRuns);
  EXPECT_NEAR(streaming_mean, closed_mean, 6.0 * sd);
}

TEST(BatchStatGrrTest, ClosedFormPreservesReportTotal) {
  // GRR's multinomial histogram path is jointly exact: every user reports
  // exactly one value, so the counts must sum to n.
  Grr grr(kDomain, kEpsilon);
  Rng rng(5);
  auto agg = grr.MakeAggregator();
  agg->AccumulateHistogram(TrueHistogram(), rng);
  long long total = 0;
  for (long long c : agg->counts()) total += c;
  EXPECT_EQ(total, kUsers);
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, BatchStatTest,
                         ::testing::ValuesIn(AllProtocols()),
                         [](const auto& info) {
                           return std::string(ProtocolName(info.param));
                         });

}  // namespace
}  // namespace ldpr::fo
