// Differential suite for the bitsliced decode path (the block-accumulate
// tentpole): for every protocol and a domain sweep spanning the UE word
// boundaries (k = 2, 63, 64, 65, 1000), Aggregator::AccumulateWireBlock over
// a staged frame block must be bit-identical to the scalar
// WireDecoder::DecodeInto loop — including ragged tails (counts that are not
// multiples of 64 or of bitslice::kBlockRows), partial flushes at arbitrary
// boundaries, interleaved Merge of block-fed shards, and every OLH kernel
// tier (scalar / AVX2 / AVX-512, forced via LDPR_OLH_KERNEL). Also pins the
// two arithmetic tricks the kernels rest on: the multiplicative-inverse
// divisibility test against plain %, and Validate against DecodeInto's
// accept set on adversarial buffers.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <string>
#include <tuple>
#include <vector>

#include "core/rng.h"
#include "fo/bitslice.h"
#include "fo/factory.h"
#include "fo/ss.h"
#include "fo/wire.h"

namespace ldpr::fo {
namespace {

constexpr std::uint64_t kSeed = 0xB17512CEULL;
constexpr double kEpsilon = 1.0;

// 300 rows: spans two full kBlockRows=128 sub-blocks plus a ragged tail, and
// pushes past 256 reports so a saturating-at-255 byte-lane bug in the UE
// SWAR accumulators cannot hide.
constexpr int kUsers = 300;

std::vector<std::vector<std::uint8_t>> MakeFrames(const FrequencyOracle& oracle,
                                                  int n, std::uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<std::uint8_t>> frames;
  frames.reserve(n);
  const int k = oracle.k();
  for (int i = 0; i < n; ++i) {
    Report r = oracle.Randomize((i * i + i / 3) % k, rng);
    frames.push_back(SerializeReport(oracle, r));
  }
  return frames;
}

// Packs frames[first, first + count) into a fresh staging buffer laid out
// exactly like serve::Collector's lanes: RowStride-aligned rows, zero
// padding, kRowTailSlack readable bytes after the last row.
std::vector<std::uint8_t> StageRows(
    const std::vector<std::vector<std::uint8_t>>& frames, std::size_t stride,
    int first, int count) {
  std::vector<std::uint8_t> buffer(
      static_cast<std::size_t>(count) * stride + bitslice::kRowTailSlack, 0);
  for (int i = 0; i < count; ++i) {
    const auto& frame = frames[first + i];
    std::memcpy(buffer.data() + static_cast<std::size_t>(i) * stride,
                frame.data(), frame.size());
  }
  return buffer;
}

std::unique_ptr<Aggregator> ScalarReference(
    const FrequencyOracle& oracle,
    const std::vector<std::vector<std::uint8_t>>& frames) {
  WireDecoder decoder(oracle);
  auto agg = oracle.MakeAggregator();
  for (const auto& frame : frames) {
    EXPECT_TRUE(decoder.DecodeInto(frame, *agg));
  }
  return agg;
}

class BitsliceExactTest
    : public ::testing::TestWithParam<std::tuple<Protocol, int>> {
 protected:
  Protocol protocol() const { return std::get<0>(GetParam()); }
  int k() const { return std::get<1>(GetParam()); }
};

TEST_P(BitsliceExactTest, OneBlockMatchesScalarBitwise) {
  auto oracle = MakeOracle(protocol(), k(), kEpsilon);
  const auto frames = MakeFrames(*oracle, kUsers, kSeed);
  const auto expected = ScalarReference(*oracle, frames);

  const std::size_t stride =
      bitslice::RowStride(WireDecoder(*oracle).report_bytes());
  const auto staged = StageRows(frames, stride, 0, kUsers);
  auto agg = oracle->MakeAggregator();
  agg->AccumulateWireBlock(staged.data(), stride, kUsers);

  EXPECT_EQ(agg->counts(), expected->counts());
  EXPECT_EQ(agg->n(), expected->n());
}

TEST_P(BitsliceExactTest, RaggedTailCountsMatchScalar) {
  auto oracle = MakeOracle(protocol(), k(), kEpsilon);
  const std::size_t stride =
      bitslice::RowStride(WireDecoder(*oracle).report_bytes());
  // Sweep counts around the word and sub-block boundaries, including the
  // empty block (a legal no-op flush).
  for (int n : {0, 1, 63, 64, 65, 127, bitslice::kBlockRows,
                bitslice::kBlockRows + 1}) {
    const auto frames = MakeFrames(*oracle, n, kSeed + n);
    const auto expected = ScalarReference(*oracle, frames);
    const auto staged = StageRows(frames, stride, 0, n);
    auto agg = oracle->MakeAggregator();
    agg->AccumulateWireBlock(staged.data(), stride, n);
    EXPECT_EQ(agg->counts(), expected->counts()) << "n=" << n;
    EXPECT_EQ(agg->n(), expected->n()) << "n=" << n;
  }
}

TEST_P(BitsliceExactTest, PartialFlushesAndInterleavedMergeMatchScalar) {
  auto oracle = MakeOracle(protocol(), k(), kEpsilon);
  const auto frames = MakeFrames(*oracle, kUsers, kSeed ^ 0x5A5A);
  const auto expected = ScalarReference(*oracle, frames);
  const std::size_t stride =
      bitslice::RowStride(WireDecoder(*oracle).report_bytes());

  // Two shard aggregators fed alternating, unevenly sized partial flushes
  // (the mid-epoch flush shapes a collector lane produces), then merged.
  auto shard_a = oracle->MakeAggregator();
  auto shard_b = oracle->MakeAggregator();
  const int chunks[] = {1, 7, 63, 64, 65, 2, 58};
  int offset = 0;
  int turn = 0;
  for (int i = 0; offset < kUsers; i = (i + 1) % 7, ++turn) {
    const int count = std::min(chunks[i], kUsers - offset);
    const auto staged = StageRows(frames, stride, offset, count);
    Aggregator& shard = (turn % 2 == 0) ? *shard_a : *shard_b;
    shard.AccumulateWireBlock(staged.data(), stride, count);
    offset += count;
  }
  shard_a->Merge(*shard_b);

  EXPECT_EQ(shard_a->counts(), expected->counts());
  EXPECT_EQ(shard_a->n(), expected->n());
}

TEST_P(BitsliceExactTest, ValidateAcceptsExactlyWhatDecodeIntoAccepts) {
  auto oracle = MakeOracle(protocol(), k(), kEpsilon);
  WireDecoder validator(*oracle);
  WireDecoder decoder(*oracle);
  const std::size_t bytes = decoder.report_bytes();
  Rng rng(kSeed ^ 0xF00D);

  // Random buffers of the exact accepted length: mostly garbage, so this
  // exercises both accept and reject on every field check.
  for (int trial = 0; trial < 400; ++trial) {
    std::vector<std::uint8_t> buf(bytes);
    for (auto& b : buf) b = static_cast<std::uint8_t>(rng() & 0xFF);
    // Half the trials start from a genuine frame and flip one bit, probing
    // the accept boundary instead of deep-reject space.
    if (trial % 2 == 0) {
      const auto frames = MakeFrames(*oracle, 1, kSeed + trial);
      buf = frames[0];
      buf[(trial / 2) % buf.size()] ^=
          static_cast<std::uint8_t>(1u << (trial % 8));
    }
    auto agg = oracle->MakeAggregator();
    EXPECT_EQ(validator.Validate(buf), decoder.DecodeInto(buf, *agg))
        << "trial " << trial;
  }

  // Wrong lengths are rejected by both.
  std::vector<std::uint8_t> zeros(bytes + 9, 0);
  for (std::size_t size = 0; size <= bytes + 8; ++size) {
    if (size == bytes) continue;
    auto agg = oracle->MakeAggregator();
    EXPECT_FALSE(validator.Validate({zeros.data(), size}));
    EXPECT_FALSE(decoder.DecodeInto({zeros.data(), size}, *agg));
  }
}

// The batch (non-wire) path: Aggregator::Accumulate stages Report wire
// images and decodes them through the same block kernels the serve path
// uses (GRR excepted — its scalar accumulate is a single increment). The
// staging must be invisible: counts()/n() reads at arbitrary fills flush
// pending rows and match a scalar AccumulateSupport reference exactly, and
// later accumulation is undisturbed by the mid-stream reads.
TEST_P(BitsliceExactTest, StagedBatchAccumulateMatchesScalarSupport) {
  auto oracle = MakeOracle(protocol(), k(), kEpsilon);
  Rng rng(kSeed ^ 0xBA7C);
  std::vector<Report> reports;
  reports.reserve(kUsers);
  for (int i = 0; i < kUsers; ++i) {
    reports.push_back(oracle->Randomize((i * 3 + 1) % k(), rng));
  }

  // Probe fills: mid-block (1, 64, 200), exactly one block (128), and the
  // final ragged tail (300).
  const std::vector<int> probes = {1, 64, bitslice::kBlockRows, 200, kUsers};
  std::vector<long long> ref_counts(k(), 0);
  auto agg = oracle->MakeAggregator();
  for (int i = 0; i < kUsers; ++i) {
    agg->Accumulate(reports[i]);
    oracle->AccumulateSupport(reports[i], &ref_counts);
    if (std::find(probes.begin(), probes.end(), i + 1) != probes.end()) {
      ASSERT_EQ(agg->counts(), ref_counts) << "after " << i + 1 << " reports";
      ASSERT_EQ(agg->n(), i + 1);
    }
  }
  EXPECT_EQ(agg->counts(), ref_counts);
  EXPECT_EQ(agg->Estimate(), oracle->EstimateFromCounts(ref_counts, kUsers));
}

// Merge must flush both sides' staged rows first: split the stream at
// boundaries where one or both aggregators hold a partial block, and at an
// exact block boundary for contrast.
TEST_P(BitsliceExactTest, StagedMergeAtNonBlockBoundariesMatchesScalar) {
  auto oracle = MakeOracle(protocol(), k(), kEpsilon);
  Rng rng(kSeed ^ 0x3ED);
  std::vector<Report> reports;
  reports.reserve(kUsers);
  for (int i = 0; i < kUsers; ++i) {
    reports.push_back(oracle->Randomize((i * i + 7) % k(), rng));
  }
  std::vector<long long> ref_counts(k(), 0);
  for (const Report& r : reports) oracle->AccumulateSupport(r, &ref_counts);

  for (int split : {77, bitslice::kBlockRows, 233}) {
    auto a = oracle->MakeAggregator();
    auto b = oracle->MakeAggregator();
    for (int i = 0; i < split; ++i) a->Accumulate(reports[i]);
    for (int i = split; i < kUsers; ++i) b->Accumulate(reports[i]);
    a->Merge(*b);
    EXPECT_EQ(a->counts(), ref_counts) << "split=" << split;
    EXPECT_EQ(a->n(), kUsers) << "split=" << split;
  }
}

std::string ParamName(
    const ::testing::TestParamInfo<std::tuple<Protocol, int>>& info) {
  return std::string(ProtocolName(std::get<0>(info.param))) + "_k" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    AllProtocolsDomainSweep, BitsliceExactTest,
    ::testing::Combine(::testing::ValuesIn(AllProtocols()),
                       ::testing::Values(2, 63, 64, 65, 1000)),
    ParamName);

// SS across the (epsilon, k) grid: omega = clamp(round(k / (e^eps + 1)), 1,
// k - 1) sweeps from 1 (high eps or tiny k) past the SWAR validator's
// 57/width fields-per-group boundary (k = 100 -> width 7, omega up to 44),
// so full groups, tail groups, and the cross-group stitch all get exercised
// at several shapes. Pins the block kernel bitwise at ragged tails and the
// validator's accept set on targeted malformed fields — out-of-range,
// non-increasing, duplicate, dirty padding — not just random fuzz.
class SsOmegaGridTest
    : public ::testing::TestWithParam<std::tuple<double, int>> {
 protected:
  double epsilon() const { return std::get<0>(GetParam()); }
  int k() const { return std::get<1>(GetParam()); }
};

// MSB-first packer matching the SS wire layout (SerializeReport): lets the
// test craft frames field by field, including illegal ones SerializeReport
// would never emit.
std::vector<std::uint8_t> PackSsFrame(const std::vector<int>& values,
                                      int width, std::size_t bytes) {
  std::vector<std::uint8_t> frame(bytes, 0);
  std::uint64_t acc = 0;
  int acc_bits = 0;
  std::size_t out = 0;
  for (int v : values) {
    acc = (acc << width) | static_cast<std::uint64_t>(v);
    acc_bits += width;
    while (acc_bits >= 8) {
      acc_bits -= 8;
      frame[out++] = static_cast<std::uint8_t>((acc >> acc_bits) & 0xFF);
    }
  }
  if (acc_bits > 0) {
    frame[out++] =
        static_cast<std::uint8_t>((acc << (8 - acc_bits)) & 0xFF);
  }
  return frame;
}

TEST_P(SsOmegaGridTest, BlockKernelMatchesScalarAtRaggedTails) {
  auto oracle = MakeOracle(Protocol::kSs, k(), epsilon());
  const std::size_t stride =
      bitslice::RowStride(WireDecoder(*oracle).report_bytes());
  for (int n : {1, 63, bitslice::kBlockRows - 1, bitslice::kBlockRows,
                bitslice::kBlockRows + 1, 300}) {
    const auto frames = MakeFrames(*oracle, n, kSeed + n);
    const auto expected = ScalarReference(*oracle, frames);
    const auto staged = StageRows(frames, stride, 0, n);
    auto agg = oracle->MakeAggregator();
    agg->AccumulateWireBlock(staged.data(), stride, n);
    EXPECT_EQ(agg->counts(), expected->counts()) << "n=" << n;
    EXPECT_EQ(agg->n(), expected->n()) << "n=" << n;
  }
}

TEST_P(SsOmegaGridTest, ValidatorRejectsMalformedFieldsLikeScalar) {
  auto oracle = MakeOracle(Protocol::kSs, k(), epsilon());
  const Ss& ss = static_cast<const Ss&>(*oracle);
  const int omega = ss.omega();
  const int width = CeilLog2(k());
  WireDecoder decoder(*oracle);
  const std::size_t bytes = decoder.report_bytes();
  const int padding = static_cast<int>(bytes) * 8 - decoder.report_bits();

  // Both accept-set checks on every crafted frame: the SWAR Validate and the
  // scalar DecodeInto must agree, and for the malformed frames both reject.
  const auto expect_verdict = [&](const std::vector<std::uint8_t>& frame,
                                  bool want, const char* what) {
    auto agg = oracle->MakeAggregator();
    EXPECT_EQ(decoder.Validate(frame), want) << what;
    EXPECT_EQ(decoder.DecodeInto(frame, *agg), want) << what;
    EXPECT_EQ(agg->n(), want ? 1 : 0) << what;
  };

  // Two legal subsets probing both ends of the value range.
  std::vector<int> low(omega), high(omega);
  for (int i = 0; i < omega; ++i) {
    low[i] = i;
    high[i] = k() - omega + i;
  }
  expect_verdict(PackSsFrame(low, width, bytes), true, "low subset");
  expect_verdict(PackSsFrame(high, width, bytes), true, "high subset");

  // Out-of-range field: only expressible when k is not a power of two.
  if (k() < (1 << width)) {
    std::vector<int> bad = low;
    bad.back() = k();  // first illegal encodable value
    expect_verdict(PackSsFrame(bad, width, bytes), false, "field == k");
    bad.back() = (1 << width) - 1;  // largest encodable value
    if (bad.back() >= k()) {
      expect_verdict(PackSsFrame(bad, width, bytes), false, "max field");
    }
  }
  if (omega >= 2) {
    std::vector<int> swapped = high;
    std::swap(swapped[0], swapped[1]);  // strictly decreasing pair
    expect_verdict(PackSsFrame(swapped, width, bytes), false,
                   "non-increasing");
    std::vector<int> dup = high;
    dup[1] = dup[0];  // equal adjacent fields: also not strictly increasing
    expect_verdict(PackSsFrame(dup, width, bytes), false, "duplicate");
    // A violation in the LAST adjacent pair lands in the cross-group stitch
    // for shapes with more than one SWAR group.
    std::vector<int> tail = low;
    tail[omega - 1] = tail[omega - 2];
    expect_verdict(PackSsFrame(tail, width, bytes), false, "tail duplicate");
  }
  if (padding > 0) {
    std::vector<std::uint8_t> dirty = PackSsFrame(low, width, bytes);
    dirty.back() |= 1;  // lowest bit is padding whenever padding > 0
    expect_verdict(dirty, false, "dirty padding");
  }
}

std::string OmegaGridName(
    const ::testing::TestParamInfo<std::tuple<double, int>>& info) {
  const double eps = std::get<0>(info.param);
  // 0.25 -> "eps025": keep the name alphanumeric.
  const int centi = static_cast<int>(eps * 100 + 0.5);
  return "eps" + std::to_string(centi) + "_k" +
         std::to_string(std::get<1>(info.param));
}

INSTANTIATE_TEST_SUITE_P(
    EpsilonDomainGrid, SsOmegaGridTest,
    ::testing::Combine(::testing::Values(0.25, 1.0, 3.0),
                       ::testing::Values(2, 5, 64, 100, 257)),
    OmegaGridName);

// The OLH block kernel dispatches between scalar, AVX2, and AVX-512 tiers at
// aggregator construction; LDPR_OLH_KERNEL forces a tier (honored only when
// the CPU supports it, so this test passes — in the scalar tier — on any
// machine). Every tier must produce bit-identical counts.
TEST(BitsliceOlhKernelTest, AllKernelTiersMatchScalarBitwise) {
  auto oracle = MakeOracle(Protocol::kOlh, 150, kEpsilon);
  const auto frames = MakeFrames(*oracle, 500, kSeed);
  const std::size_t stride =
      bitslice::RowStride(WireDecoder(*oracle).report_bytes());
  const auto staged = StageRows(frames, stride, 0, 500);
  const auto expected = ScalarReference(*oracle, frames);

  for (const char* kernel : {"scalar", "avx2", "avx512"}) {
    ::setenv("LDPR_OLH_KERNEL", kernel, 1);
    auto agg = oracle->MakeAggregator();  // fresh: dispatch is per-aggregator
    agg->AccumulateWireBlock(staged.data(), stride, 500);
    EXPECT_EQ(agg->counts(), expected->counts()) << "kernel=" << kernel;
    EXPECT_EQ(agg->n(), expected->n()) << "kernel=" << kernel;
  }
  ::unsetenv("LDPR_OLH_KERNEL");
}

// The OLH kernel replaces `h % g == val` with a multiplicative-inverse
// divisibility test (Granlund–Montgomery): pin it against plain % across
// every divisor shape (odd, even, powers of two) and adversarial dividends.
TEST(BitsliceDivisibilityTest, MatchesModuloForAllDivisorShapes) {
  Rng rng(kSeed);
  std::vector<std::uint64_t> probes = {0, 1, 2, 0x7FFFFFFFFFFFFFFFULL,
                                       0x8000000000000000ULL,
                                       0xFFFFFFFFFFFFFFFFULL};
  for (int i = 0; i < 64; ++i) probes.push_back(rng());
  for (std::uint64_t d = 1; d <= 2048; ++d) {
    const auto check = bitslice::DivisibilityCheck::For(d);
    for (std::uint64_t n : probes) {
      EXPECT_EQ(check.IsDivisible(n), n % d == 0) << "n=" << n << " d=" << d;
    }
    // Exact multiples and near-multiples around each probe.
    for (std::uint64_t n : probes) {
      const std::uint64_t m = n - n % d;
      EXPECT_TRUE(check.IsDivisible(m)) << "m=" << m << " d=" << d;
      // m + 1 == 1 (mod d) is never a multiple for d > 1 — except when m + 1
      // wraps to 0, which is one.
      if (d > 1 && m != ~std::uint64_t{0}) {
        EXPECT_FALSE(check.IsDivisible(m + 1)) << "m+1=" << m + 1
                                               << " d=" << d;
      }
    }
  }
  for (int shift = 0; shift < 64; ++shift) {
    const std::uint64_t d = std::uint64_t{1} << shift;
    const auto check = bitslice::DivisibilityCheck::For(d);
    for (std::uint64_t n : probes) {
      EXPECT_EQ(check.IsDivisible(n), n % d == 0)
          << "n=" << n << " d=2^" << shift;
    }
  }
}

}  // namespace
}  // namespace ldpr::fo
