// Tests for the communication-cost model (fo/comm_cost): closed forms,
// agreement with measured report payloads, tuple costs of the three
// multidimensional solutions, and the protocol recommendation rule of
// Section 6 ("OUE and/or OLH depending on k_j due to communication costs").

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "core/check.h"
#include "fo/comm_cost.h"
#include "fo/factory.h"
#include "fo/olh.h"
#include "fo/ss.h"

namespace ldpr::fo {
namespace {

TEST(CommCostTest, GrrIsCeilLog2K) {
  EXPECT_DOUBLE_EQ(ReportBits(Protocol::kGrr, 2, 1.0), 1.0);
  EXPECT_DOUBLE_EQ(ReportBits(Protocol::kGrr, 3, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(ReportBits(Protocol::kGrr, 4, 1.0), 2.0);
  EXPECT_DOUBLE_EQ(ReportBits(Protocol::kGrr, 74, 1.0), 7.0);
  EXPECT_DOUBLE_EQ(ReportBits(Protocol::kGrr, 1024, 1.0), 10.0);
}

TEST(CommCostTest, GrrCostIndependentOfEpsilon) {
  for (double eps : {0.5, 1.0, 4.0, 10.0}) {
    EXPECT_DOUBLE_EQ(ReportBits(Protocol::kGrr, 41, eps), 6.0) << eps;
  }
}

TEST(CommCostTest, UnaryEncodingsCostKBits) {
  for (int k : {2, 7, 41, 92}) {
    EXPECT_DOUBLE_EQ(ReportBits(Protocol::kSue, k, 2.0), k);
    EXPECT_DOUBLE_EQ(ReportBits(Protocol::kOue, k, 2.0), k);
  }
}

TEST(CommCostTest, OlhCostIsSeedPlusHashedValue) {
  const double eps = 3.0;
  Olh olh(1000, eps);
  const int g = olh.g();
  int g_bits = 0;
  while ((1 << g_bits) < g) ++g_bits;
  EXPECT_DOUBLE_EQ(ReportBits(Protocol::kOlh, 1000, eps), 64.0 + g_bits);

  CommCostModel shared_seed;
  shared_seed.olh_seed_bits = 0;
  EXPECT_DOUBLE_EQ(ReportBits(Protocol::kOlh, 1000, eps, shared_seed), g_bits);
}

TEST(CommCostTest, OlhCostIndependentOfK) {
  // g depends only on epsilon, so OLH's upload is flat in k — the property
  // that makes it preferable to OUE for very large domains.
  const double eps = 2.0;
  EXPECT_DOUBLE_EQ(ReportBits(Protocol::kOlh, 100, eps),
                   ReportBits(Protocol::kOlh, 100000, eps));
}

TEST(CommCostTest, SsCostIsOmegaValues) {
  const int k = 74;
  const double eps = 1.0;
  Ss ss(k, eps);
  EXPECT_DOUBLE_EQ(ReportBits(Protocol::kSs, k, eps), ss.omega() * 7.0);
}

TEST(CommCostTest, SsCostShrinksWithEpsilon) {
  // omega ~ k/(e^eps + 1): a larger budget needs a smaller subset.
  const int k = 200;
  EXPECT_GT(ReportBits(Protocol::kSs, k, 0.5), ReportBits(Protocol::kSs, k, 3.0));
}

TEST(CommCostTest, MeasuredMatchesClosedFormForValueProtocols) {
  Rng rng(7);
  for (Protocol protocol :
       {Protocol::kGrr, Protocol::kSs, Protocol::kSue, Protocol::kOue}) {
    const int k = 16;
    const double eps = 1.5;
    auto oracle = MakeOracle(protocol, k, eps);
    for (int v = 0; v < k; ++v) {
      Report report = oracle->Randomize(v, rng);
      EXPECT_DOUBLE_EQ(MeasuredReportBits(protocol, report, k),
                       ReportBits(protocol, k, eps))
          << ProtocolName(protocol) << " v=" << v;
    }
  }
}

TEST(CommCostTest, RejectsInvalidArguments) {
  EXPECT_THROW(ReportBits(Protocol::kGrr, 1, 1.0), InvalidArgumentError);
  EXPECT_THROW(ReportBits(Protocol::kGrr, 4, 0.0), InvalidArgumentError);
  EXPECT_THROW(ReportBits(Protocol::kGrr, 4, -1.0), InvalidArgumentError);
  EXPECT_THROW(SmpTupleBits(Protocol::kGrr, {}, 1.0), InvalidArgumentError);
  EXPECT_THROW(RecommendProtocol(8, 1.0, 0.9), InvalidArgumentError);
}

TEST(CommCostTest, SmpAddsAttributeIndex) {
  // d = 4 attributes with equal k: SMP pays ceil(log2 d) = 2 bits on top of
  // one report.
  const std::vector<int> k = {16, 16, 16, 16};
  const double eps = 1.0;
  EXPECT_DOUBLE_EQ(SmpTupleBits(Protocol::kGrr, k, eps),
                   2.0 + ReportBits(Protocol::kGrr, 16, eps));
}

TEST(CommCostTest, SplSumsOverAttributesAtSplitBudget) {
  const std::vector<int> k = {8, 32};
  const double eps = 2.0;
  EXPECT_DOUBLE_EQ(SplTupleBits(Protocol::kSs, k, eps),
                   ReportBits(Protocol::kSs, 8, 1.0) +
                       ReportBits(Protocol::kSs, 32, 1.0));
}

TEST(CommCostTest, RsFdSumsAtAmplifiedBudget) {
  const std::vector<int> k = {8, 32, 64};
  const double eps = 1.0;
  const double amplified = std::log(3.0 * (std::exp(eps) - 1.0) + 1.0);
  double expected = 0.0;
  for (int kj : k) expected += ReportBits(Protocol::kSs, kj, amplified);
  EXPECT_DOUBLE_EQ(RsFdTupleBits(Protocol::kSs, k, eps), expected);
}

TEST(CommCostTest, RsFdUploadsMoreThanSmpForUeProtocols) {
  // RS+FD sends a full tuple (one UE vector per attribute); SMP sends one.
  const std::vector<int> k = {74, 7, 16, 7, 14, 6, 5, 2, 41, 2};
  EXPECT_GT(RsFdTupleBits(Protocol::kOue, k, 1.0),
            SmpTupleBits(Protocol::kOue, k, 1.0));
}

TEST(CommCostTest, FrontierHasAllProtocolsWithPositiveCosts) {
  auto frontier = CostUtilityFrontier(32, 1.0);
  ASSERT_EQ(frontier.size(), 5u);
  for (const auto& point : frontier) {
    EXPECT_GT(point.bits_per_report, 0.0) << ProtocolName(point.protocol);
    EXPECT_GT(point.variance, 0.0) << ProtocolName(point.protocol);
  }
}

TEST(CommCostTest, RecommendationPrefersGrrOnTinyDomains) {
  // For k = 2 and moderate eps, GRR's variance is optimal (or within any
  // reasonable slack) and its 1-bit upload is unbeatable.
  EXPECT_EQ(RecommendProtocol(2, 2.0), Protocol::kGrr);
}

TEST(CommCostTest, RecommendationAvoidsOueOnHugeDomains) {
  // k = 10^5: OUE costs 100k bits per report; OLH matches its variance at
  // ~70 bits. The recommendation must not be a unary encoding.
  Protocol recommended = RecommendProtocol(100000, 1.0);
  EXPECT_NE(recommended, Protocol::kOue);
  EXPECT_NE(recommended, Protocol::kSue);
}

// Parameterized sweep: the recommended protocol is always within slack of
// the best variance, and no strictly cheaper protocol also within slack
// exists (optimality of the rule).
class RecommendSweepTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(RecommendSweepTest, RecommendationIsCheapestWithinSlack) {
  const auto [k, eps] = GetParam();
  const double slack = 1.05;
  Protocol recommended = RecommendProtocol(k, eps, slack);
  auto frontier = CostUtilityFrontier(k, eps);
  double best_variance = frontier[0].variance;
  for (const auto& point : frontier)
    best_variance = std::min(best_variance, point.variance);
  double recommended_bits = 0.0;
  double recommended_variance = 0.0;
  for (const auto& point : frontier) {
    if (point.protocol == recommended) {
      recommended_bits = point.bits_per_report;
      recommended_variance = point.variance;
    }
  }
  EXPECT_LE(recommended_variance, slack * best_variance * (1 + 1e-12));
  for (const auto& point : frontier) {
    if (point.variance <= slack * best_variance) {
      EXPECT_GE(point.bits_per_report, recommended_bits)
          << ProtocolName(point.protocol) << " beats "
          << ProtocolName(recommended);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    KEpsGrid, RecommendSweepTest,
    ::testing::Combine(::testing::Values(2, 5, 16, 74, 512, 100000),
                       ::testing::Values(0.5, 1.0, 2.0, 4.0, 8.0)));

}  // namespace
}  // namespace ldpr::fo
