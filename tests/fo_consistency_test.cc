#include "fo/consistency.h"

#include <cmath>
#include <numeric>

#include <gtest/gtest.h>

#include "core/check.h"
#include "core/metrics.h"
#include "core/sampling.h"
#include "fo/factory.h"

namespace ldpr::fo {
namespace {

double Sum(const std::vector<double>& v) {
  return std::accumulate(v.begin(), v.end(), 0.0);
}

TEST(NormSubTest, AlreadyConsistentIsUnchanged) {
  std::vector<double> est{0.5, 0.3, 0.2};
  auto out = NormSub(est);
  for (int i = 0; i < 3; ++i) EXPECT_NEAR(out[i], est[i], 1e-12);
}

TEST(NormSubTest, NegativesZeroedAndShiftApplied) {
  // sum = 1.0 but one entry negative: the projection zeroes it and removes
  // the shift from the survivors.
  std::vector<double> est{0.7, 0.5, -0.2};
  auto out = NormSub(est);
  EXPECT_NEAR(Sum(out), 1.0, 1e-12);
  EXPECT_DOUBLE_EQ(out[2], 0.0);
  EXPECT_GT(out[0], out[1]);
  for (double v : out) EXPECT_GE(v, 0.0);
}

TEST(NormSubTest, IsExactL2SimplexProjection) {
  // Brute-force check: no feasible point within a small perturbation grid is
  // closer in L2 than the NormSub output.
  std::vector<double> est{0.9, 0.4, -0.1, -0.2};
  auto out = NormSub(est);
  EXPECT_NEAR(Sum(out), 1.0, 1e-12);
  auto l2 = [&](const std::vector<double>& x) {
    double acc = 0.0;
    for (int i = 0; i < 4; ++i) acc += (x[i] - est[i]) * (x[i] - est[i]);
    return acc;
  };
  const double base = l2(out);
  // Perturb within the simplex (move mass between two positive coordinates).
  for (double step : {0.01, 0.05}) {
    for (int a = 0; a < 4; ++a) {
      for (int b = 0; b < 4; ++b) {
        if (a == b) continue;
        std::vector<double> probe = out;
        if (probe[a] < step) continue;
        probe[a] -= step;
        probe[b] += step;
        EXPECT_GE(l2(probe), base - 1e-12);
      }
    }
  }
}

TEST(NormSubTest, AllNegativeExceptOne) {
  std::vector<double> est{-0.5, 2.0, -0.3};
  auto out = NormSub(est);
  EXPECT_DOUBLE_EQ(out[0], 0.0);
  EXPECT_DOUBLE_EQ(out[2], 0.0);
  EXPECT_NEAR(out[1], 1.0, 1e-12);
}

TEST(MakeConsistentTest, AllMethodsProduceDistributions) {
  std::vector<double> est{0.6, -0.1, 0.3, 0.4, -0.05};
  for (ConsistencyMethod m :
       {ConsistencyMethod::kClampRenorm, ConsistencyMethod::kNormSub,
        ConsistencyMethod::kBaseCut}) {
    auto out = MakeConsistent(est, m, 0.05);
    EXPECT_NEAR(Sum(out), 1.0, 1e-9) << ConsistencyMethodName(m);
    for (double v : out) EXPECT_GE(v, 0.0) << ConsistencyMethodName(m);
  }
}

TEST(MakeConsistentTest, BaseCutDropsSmallEstimates) {
  std::vector<double> est{0.9, 0.02, 0.08};
  auto out = MakeConsistent(est, ConsistencyMethod::kBaseCut, 0.05);
  EXPECT_DOUBLE_EQ(out[1], 0.0);
  EXPECT_GT(out[0], 0.0);
  EXPECT_GT(out[2], 0.0);
}

TEST(MakeConsistentTest, BaseCutDegenerateFallsBack) {
  std::vector<double> est{0.01, 0.02};
  auto out = MakeConsistent(est, ConsistencyMethod::kBaseCut, 0.5);
  EXPECT_NEAR(Sum(out), 1.0, 1e-9);
}

TEST(MakeConsistentTest, Validation) {
  EXPECT_THROW(MakeConsistent({}, ConsistencyMethod::kNormSub),
               InvalidArgumentError);
  EXPECT_THROW(NormSub({}), InvalidArgumentError);
}

TEST(ConsistencyTest, NormSubImprovesLdpEstimateMse) {
  // End-to-end: post-processing a noisy OUE estimate with NormSub should
  // (weakly) reduce the MSE against the truth — projection onto a convex
  // set containing the truth never moves the estimate away from it.
  const int k = 32;
  Rng rng(1);
  CategoricalSampler sampler(ZipfDistribution(k, 1.5));
  std::vector<int> values(4000);
  for (auto& v : values) v = sampler.Sample(rng);
  std::vector<double> truth(k, 0.0);
  for (int v : values) truth[v] += 1.0 / values.size();

  auto oracle = MakeOracle(Protocol::kOue, k, 0.5);
  double raw_total = 0.0, proj_total = 0.0;
  for (int run = 0; run < 10; ++run) {
    auto raw = oracle->EstimateFrequencies(values, rng);
    raw_total += Mse(truth, raw);
    proj_total += Mse(truth, NormSub(raw));
  }
  EXPECT_LT(proj_total, raw_total);
}

}  // namespace
}  // namespace ldpr::fo
