// Statistical validation of the randomizers' support distributions using
// the core/stats machinery: for every oracle, the empirical frequency with
// which each domain value is *supported* by a report must match the (p, q)
// the estimators assume — checked with Wilson intervals per value. A second
// suite validates the RS+FD support probabilities (the gamma terms of the
// Theorem-2-style variances) the same way. These tests would catch a
// randomizer whose parameters drift from its estimator — a bug class the
// LDP-bound tests (which only compare output distributions across inputs)
// cannot see.

#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/stats.h"
#include "fo/factory.h"
#include "multidim/rsfd.h"
#include "multidim/variance.h"

namespace ldpr::fo {
namespace {

// Support rate of each value over many reports of a fixed input.
std::vector<double> EmpiricalSupportRates(const FrequencyOracle& oracle,
                                          int input, int trials, Rng& rng) {
  std::vector<long long> counts(oracle.k(), 0);
  std::vector<long long> one(oracle.k());
  for (int t = 0; t < trials; ++t) {
    std::fill(one.begin(), one.end(), 0);
    oracle.AccumulateSupport(oracle.Randomize(input, rng), &one);
    for (int v = 0; v < oracle.k(); ++v) counts[v] += one[v];
  }
  std::vector<double> rates(oracle.k());
  for (int v = 0; v < oracle.k(); ++v) {
    rates[v] = static_cast<double>(counts[v]) / trials;
  }
  return rates;
}

class SupportDistributionTest
    : public ::testing::TestWithParam<std::tuple<Protocol, double>> {};

TEST_P(SupportDistributionTest, SupportRatesMatchPQ) {
  const auto [protocol, eps] = GetParam();
  const int k = 8;
  const int trials = 40000;
  const int input = 3;
  auto oracle = MakeOracle(protocol, k, eps);
  Rng rng(100 + static_cast<int>(protocol));
  const auto rates = EmpiricalSupportRates(*oracle, input, trials, rng);
  // 4-sigma Wilson-style tolerance per value.
  for (int v = 0; v < k; ++v) {
    const double expected = (v == input) ? oracle->p() : oracle->q();
    const double sigma =
        std::sqrt(expected * (1 - expected) / trials);
    EXPECT_NEAR(rates[v], expected, 4.5 * sigma + 1e-9)
        << ProtocolName(protocol) << " eps=" << eps << " v=" << v;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ProtocolEps, SupportDistributionTest,
    ::testing::Combine(::testing::Values(Protocol::kGrr, Protocol::kOlh,
                                         Protocol::kSs, Protocol::kSue,
                                         Protocol::kOue),
                       ::testing::Values(0.5, 1.0, 3.0)));

TEST(SupportDistributionTest, GrrSupportPassesChiSquare) {
  // Full goodness-of-fit over the whole support histogram (GRR reports are
  // single values, so supports are a categorical sample).
  const int k = 6;
  const double eps = 1.0;
  auto oracle = MakeOracle(Protocol::kGrr, k, eps);
  Rng rng(17);
  std::vector<long long> counts(k, 0);
  const int trials = 90000;
  for (int t = 0; t < trials; ++t) {
    ++counts[oracle->Randomize(2, rng).value];
  }
  std::vector<double> expected(k, oracle->q());
  expected[2] = oracle->p();
  EXPECT_GT(GoodnessOfFitPValue(counts, expected), 1e-4);
}

// RS+FD per-attribute support probability gamma: the probability that one
// user's tuple supports value v of attribute j, which drives the variance
// formulas (multidim/variance).
class RsFdGammaTest
    : public ::testing::TestWithParam<std::tuple<multidim::RsFdVariant, double>> {
};

TEST_P(RsFdGammaTest, EmpiricalSupportMatchesGamma) {
  const auto [variant, eps] = GetParam();
  const std::vector<int> k = {6, 4};
  const int d = 2;
  multidim::RsFd protocol(variant, k, eps);
  Rng rng(55);
  const int trials = 60000;
  // Every user holds value 1 on attribute 0 (f = 1 for value 1, f = 0 for
  // value 0); count how often values 0 and 1 are supported.
  long long support0 = 0, support1 = 0;
  for (int t = 0; t < trials; ++t) {
    auto counts = protocol.SupportCounts(
        {protocol.RandomizeUser({1, 2}, rng)});
    support0 += counts[0][0];
    support1 += counts[0][1];
  }
  // Map the empirical support probability gamma-hat forward through
  // Var = d^2 gamma (1-gamma) / (p-q)^2 and compare with the closed form
  // (forward mapping avoids the gamma <-> 1-gamma root ambiguity; the
  // variance is invariant under it).
  const double p = protocol.p(0);
  const double q = protocol.q(0);
  auto variance_from_gamma = [&](double gamma) {
    return d * d * gamma * (1.0 - gamma) / ((p - q) * (p - q));
  };
  const double g1 = static_cast<double>(support1) / trials;
  const double g0 = static_cast<double>(support0) / trials;
  const double var1 = multidim::RsFdVariance(variant, k[0], d, eps, 1, 1.0);
  const double var0 = multidim::RsFdVariance(variant, k[0], d, eps, 1, 0.0);
  EXPECT_NEAR(variance_from_gamma(g1), var1, 0.05 * var1 + 1e-3)
      << multidim::RsFdVariantName(variant);
  EXPECT_NEAR(variance_from_gamma(g0), var0, 0.05 * var0 + 1e-3)
      << multidim::RsFdVariantName(variant);
}

INSTANTIATE_TEST_SUITE_P(
    VariantEps, RsFdGammaTest,
    ::testing::Combine(::testing::Values(multidim::RsFdVariant::kGrr,
                                         multidim::RsFdVariant::kSueZ,
                                         multidim::RsFdVariant::kSueR,
                                         multidim::RsFdVariant::kOueZ,
                                         multidim::RsFdVariant::kOueR),
                       ::testing::Values(1.0, 2.0)));

}  // namespace
}  // namespace ldpr::fo
