// Empirical verification of Definition 1 (eps-LDP) over the *full output
// distribution* of each protocol on small domains: for every pair of inputs
// (v1, v2) and every observed output y,
//   Pr[M(v1) = y] <= e^eps Pr[M(v2) = y]   (up to Monte-Carlo slack).
//
// The per-protocol parameter checks in fo_protocols_test verify the worst-
// case likelihood *ratio* analytically; this suite checks the realized
// output distributions end to end, catching implementation bugs (wrong
// sampling, asymmetric branches) the parameter checks cannot see.

#include <cmath>
#include <map>
#include <string>

#include <gtest/gtest.h>

#include "fo/factory.h"
#include "fo/metric_ldp.h"
#include "fo/olh.h"

namespace ldpr::fo {
namespace {

/// Serializes a report into a hashable output key.
std::string OutputKey(const Report& r) {
  std::string key;
  if (!r.bits.empty()) {
    for (auto b : r.bits) key += static_cast<char>('0' + b);
    return key;
  }
  if (!r.subset.empty()) {
    for (int v : r.subset) {
      key += std::to_string(v);
      key += ',';
    }
    return key;
  }
  return std::to_string(r.value);
}

/// Estimates the output distribution of M(v) with `trials` samples.
std::map<std::string, double> OutputDistribution(const FrequencyOracle& oracle,
                                                 int v, int trials, Rng& rng) {
  std::map<std::string, double> dist;
  for (int t = 0; t < trials; ++t) {
    dist[OutputKey(oracle.Randomize(v, rng))] += 1.0 / trials;
  }
  return dist;
}

/// Asserts the LDP bound across all input pairs of a small-domain oracle.
/// `min_mass` discards outputs too rare for a reliable ratio estimate.
void CheckLdpBound(const FrequencyOracle& oracle, double eps, int trials,
                   double min_mass, double slack) {
  Rng rng(12345);
  std::vector<std::map<std::string, double>> dists(oracle.k());
  for (int v = 0; v < oracle.k(); ++v) {
    dists[v] = OutputDistribution(oracle, v, trials, rng);
  }
  const double bound = std::exp(eps) * (1.0 + slack);
  for (int v1 = 0; v1 < oracle.k(); ++v1) {
    for (int v2 = 0; v2 < oracle.k(); ++v2) {
      if (v1 == v2) continue;
      for (const auto& [y, p1] : dists[v1]) {
        if (p1 < min_mass) continue;
        auto it = dists[v2].find(y);
        const double p2 = it == dists[v2].end() ? 0.0 : it->second;
        ASSERT_GT(p2, 0.0) << ProtocolName(oracle.protocol()) << " output "
                           << y << " reachable from v1=" << v1
                           << " but never from v2=" << v2;
        EXPECT_LE(p1 / p2, bound)
            << ProtocolName(oracle.protocol()) << " v1=" << v1
            << " v2=" << v2 << " y=" << y;
      }
    }
  }
}

TEST(LdpBoundTest, GrrFullDistribution) {
  for (double eps : {0.5, 1.0, 2.0}) {
    auto oracle = MakeOracle(Protocol::kGrr, 4, eps);
    CheckLdpBound(*oracle, eps, 400000, 1e-3, 0.10);
  }
}

TEST(LdpBoundTest, SueFullDistribution) {
  const double eps = 1.0;
  auto oracle = MakeOracle(Protocol::kSue, 3, eps);
  CheckLdpBound(*oracle, eps, 400000, 1e-3, 0.10);
}

TEST(LdpBoundTest, OueFullDistribution) {
  const double eps = 1.0;
  auto oracle = MakeOracle(Protocol::kOue, 3, eps);
  CheckLdpBound(*oracle, eps, 400000, 1e-3, 0.10);
}

TEST(LdpBoundTest, SsFullDistribution) {
  // k = 6, eps = 0.5: omega = 2, 15 possible subsets — enumerable outputs.
  const double eps = 0.5;
  auto oracle = MakeOracle(Protocol::kSs, 6, eps);
  CheckLdpBound(*oracle, eps, 400000, 2e-3, 0.15);
}

TEST(LdpBoundTest, OlhConditionalOnHashFunction) {
  // OLH's guarantee is conditional on the (public) hash function; verify the
  // realized GRR-in-[g] channel by binning outputs per hash seed bucket is
  // impractical, so check the analytic inner-channel ratio plus the
  // *unconditional* hashed-value distribution, which must be near-uniform
  // and input-independent up to e^eps.
  const double eps = 1.0;
  Olh olh(8, eps);
  Rng rng(5);
  const int trials = 300000;
  std::vector<std::vector<double>> dist(8, std::vector<double>(olh.g(), 0.0));
  for (int v = 0; v < 8; ++v) {
    for (int t = 0; t < trials; ++t) {
      dist[v][olh.Randomize(v, rng).value] += 1.0 / trials;
    }
  }
  // Marginally over the random hash function, the reported cell is uniform
  // regardless of the input value (the information lives in the pair).
  for (int v = 0; v < 8; ++v) {
    for (int c = 0; c < olh.g(); ++c) {
      EXPECT_NEAR(dist[v][c], 1.0 / olh.g(), 0.01);
    }
  }
  // Inner channel worst-case ratio equals e^eps exactly.
  const double q_prime = (1.0 - olh.p_prime()) / (olh.g() - 1);
  EXPECT_NEAR(olh.p_prime() / q_prime, std::exp(eps), 1e-9);
}

TEST(LdpBoundTest, MetricLdpRespectsMetricNotUniformBound) {
  // Negative control: metric-LDP deliberately does NOT satisfy plain eps-LDP
  // on distant pairs — the ratio between far-apart inputs exceeds e^eps.
  const double eps = 1.0;
  MetricLdp m(16, eps);
  double far_ratio = m.TransitionProbability(0, 0) /
                     m.TransitionProbability(15, 0);
  EXPECT_GT(far_ratio, std::exp(eps));
  // ...while adjacent inputs satisfy it comfortably.
  double near_ratio = m.TransitionProbability(0, 0) /
                      m.TransitionProbability(1, 0);
  EXPECT_LE(near_ratio, std::exp(eps) + 1e-9);
}

}  // namespace
}  // namespace ldpr::fo
