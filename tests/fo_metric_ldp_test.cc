#include "fo/metric_ldp.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/check.h"
#include "core/sampling.h"
#include "fo/grr.h"

namespace ldpr::fo {
namespace {

TEST(MetricLdpTest, TransitionRowsAreDistributions) {
  MetricLdp m(10, 1.0);
  for (int x = 0; x < 10; ++x) {
    double sum = 0.0;
    for (int y = 0; y < 10; ++y) {
      const double p = m.TransitionProbability(x, y);
      EXPECT_GT(p, 0.0);
      sum += p;
    }
    EXPECT_NEAR(sum, 1.0, 1e-12);
  }
}

TEST(MetricLdpTest, SatisfiesMetricPrivacyBound) {
  // d-privacy: Pr[y | x1] <= exp(eps |x1 - x2| / ... ) Pr[y | x2]. With the
  // normalization constant varying per row, the guarantee holds with the
  // metric eps because ratios of both the kernel and the constants are
  // bounded by exp(eps |x1 - x2| / 2) each.
  const double eps = 1.3;
  MetricLdp m(12, eps);
  for (int x1 = 0; x1 < 12; ++x1) {
    for (int x2 = 0; x2 < 12; ++x2) {
      for (int y = 0; y < 12; ++y) {
        const double ratio =
            m.TransitionProbability(x1, y) / m.TransitionProbability(x2, y);
        EXPECT_LE(std::log(ratio), eps * std::abs(x1 - x2) + 1e-9)
            << "x1=" << x1 << " x2=" << x2 << " y=" << y;
      }
    }
  }
}

TEST(MetricLdpTest, NearbyValuesBetterProtectedThanDistant) {
  MetricLdp m(20, 1.0);
  // Output distributions of adjacent inputs are closer (smaller max log
  // ratio) than those of distant inputs.
  auto max_log_ratio = [&](int x1, int x2) {
    double worst = 0.0;
    for (int y = 0; y < 20; ++y) {
      worst = std::max(worst,
                       std::abs(std::log(m.TransitionProbability(x1, y) /
                                         m.TransitionProbability(x2, y))));
    }
    return worst;
  };
  EXPECT_LT(max_log_ratio(10, 11), max_log_ratio(10, 18));
}

TEST(MetricLdpTest, RandomizeMatchesTransitionMatrix) {
  MetricLdp m(8, 1.5);
  Rng rng(1);
  std::vector<int> counts(8, 0);
  const int trials = 200000;
  for (int t = 0; t < trials; ++t) ++counts[m.Randomize(3, rng)];
  for (int y = 0; y < 8; ++y) {
    EXPECT_NEAR(static_cast<double>(counts[y]) / trials,
                m.TransitionProbability(3, y), 0.01)
        << "y=" << y;
  }
}

TEST(MetricLdpTest, EstimatorIsUnbiasedOnSkewedData) {
  const int k = 16;
  MetricLdp m(k, 1.0);
  Rng rng(2);
  CategoricalSampler sampler(ZipfDistribution(k, 1.3));
  const int n = 100000;
  std::vector<int> values(n);
  std::vector<double> truth(k, 0.0);
  for (auto& v : values) {
    v = sampler.Sample(rng);
    truth[v] += 1.0 / n;
  }
  auto est = m.EstimateFrequencies(values, rng);
  double sum = 0.0;
  for (int v = 0; v < k; ++v) {
    EXPECT_NEAR(est[v], truth[v], 0.05) << "v=" << v;
    sum += est[v];
  }
  EXPECT_NEAR(sum, 1.0, 1e-6);  // T^{-1} preserves total mass exactly
}

TEST(MetricLdpTest, AttackAccuracyHigherThanGrrButErrorIsLocal) {
  // The future-work trade-off the paper gestures at: at equal nominal eps,
  // metric-LDP concedes much more identity accuracy than GRR on large
  // ordinal domains, but its prediction errors stay metrically small.
  const int k = 64;
  const double eps = 1.0;
  MetricLdp m(k, eps);
  const double e = std::exp(eps);
  const double grr_acc = e / (e + k - 1);
  EXPECT_GT(m.ExpectedAttackAcc(), 3.0 * grr_acc);
  // Errors concentrate near the true value: mean |x - y| far below the
  // ~k/3 mean error of a uniform wrong guess.
  EXPECT_LT(m.ExpectedAttackDistance(), k / 8.0);
}

TEST(MetricLdpTest, ExpectedAccMatchesSimulation) {
  MetricLdp m(10, 2.0);
  Rng rng(3);
  long long correct = 0;
  const int trials = 100000;
  for (int t = 0; t < trials; ++t) {
    const int x = static_cast<int>(rng.UniformInt(10));
    correct += (m.AttackPredict(m.Randomize(x, rng)) == x);
  }
  EXPECT_NEAR(static_cast<double>(correct) / trials, m.ExpectedAttackAcc(),
              0.01);
}

TEST(MetricLdpTest, AccuracyMonotoneInEpsilon) {
  double prev = 0.0;
  for (double eps : {0.2, 0.5, 1.0, 2.0, 4.0}) {
    MetricLdp m(16, eps);
    EXPECT_GT(m.ExpectedAttackAcc(), prev);
    prev = m.ExpectedAttackAcc();
  }
}

TEST(MetricLdpTest, Validation) {
  EXPECT_THROW(MetricLdp(1, 1.0), InvalidArgumentError);
  EXPECT_THROW(MetricLdp(8, 0.0), InvalidArgumentError);
  MetricLdp m(8, 1.0);
  Rng rng(4);
  EXPECT_THROW(m.Randomize(8, rng), InvalidArgumentError);
  EXPECT_THROW(m.TransitionProbability(-1, 0), InvalidArgumentError);
  EXPECT_THROW(m.EstimateFrequencies(std::vector<int>(7, 0), 10),
               InvalidArgumentError);
}

}  // namespace
}  // namespace ldpr::fo
