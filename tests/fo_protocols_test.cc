#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "core/check.h"
#include "core/histogram.h"
#include "core/metrics.h"
#include "core/sampling.h"
#include "attack/plausible_deniability.h"
#include "fo/factory.h"
#include "fo/grr.h"
#include "fo/olh.h"
#include "fo/ss.h"
#include "fo/unary_encoding.h"

namespace ldpr::fo {
namespace {

// ---------------------------------------------------------------------------
// Closed-form protocol parameters.
// ---------------------------------------------------------------------------

TEST(GrrTest, Probabilities) {
  Grr grr(4, 1.0);
  const double e = std::exp(1.0);
  EXPECT_NEAR(grr.p(), e / (e + 3.0), 1e-12);
  EXPECT_NEAR(grr.q(), 1.0 / (e + 3.0), 1e-12);
  EXPECT_NEAR(grr.p() / grr.q(), e, 1e-9);
}

TEST(OlhTest, ReducedDomainAndProbabilities) {
  Olh olh(100, 2.0);
  const double e = std::exp(2.0);
  EXPECT_EQ(olh.g(), static_cast<int>(std::lround(e)) + 1);
  EXPECT_NEAR(olh.p_prime(), e / (e + olh.g() - 1), 1e-12);
  EXPECT_NEAR(olh.q(), 1.0 / olh.g(), 1e-12);
  // Likelihood ratio inside the reduced domain is exactly e^eps.
  const double q_prime = 1.0 / (e + olh.g() - 1);
  EXPECT_NEAR(olh.p_prime() / q_prime, e, 1e-9);
}

TEST(OlhTest, SmallEpsilonDomainFloor) {
  Olh olh(50, 0.1);
  EXPECT_GE(olh.g(), 2);
}

TEST(SsTest, OmegaAndProbabilities) {
  const int k = 30;
  const double eps = 1.0;
  Ss ss(k, eps);
  const double e = std::exp(eps);
  EXPECT_EQ(ss.omega(), static_cast<int>(std::lround(k / (e + 1.0))));
  const double w = ss.omega();
  EXPECT_NEAR(ss.p(), w * e / (w * e + k - w), 1e-12);
  // LDP worst-case likelihood ratio: (p/(1-p)) (k-omega)/omega = e^eps.
  EXPECT_NEAR(ss.p() / (1.0 - ss.p()) * (k - w) / w, e, 1e-9);
}

TEST(SsTest, OmegaClampedForSmallDomains) {
  Ss ss(3, 5.0);  // k/(e^eps+1) < 1
  EXPECT_EQ(ss.omega(), 1);
  Ss ss2(4, 0.01);  // k/(e^eps+1) ~ 2
  EXPECT_LE(ss2.omega(), 3);
  EXPECT_GE(ss2.omega(), 1);
}

TEST(SueTest, ProbabilitiesAndLdpRatio) {
  const double eps = 3.0;
  Sue sue(10, eps);
  const double e2 = std::exp(eps / 2.0);
  EXPECT_NEAR(sue.p(), e2 / (e2 + 1.0), 1e-12);
  EXPECT_NEAR(sue.q(), 1.0 / (e2 + 1.0), 1e-12);
  EXPECT_NEAR(sue.p() + sue.q(), 1.0, 1e-12);  // symmetric
  // eps = ln(p(1-q) / ((1-p)q)).
  const double ratio = sue.p() * (1.0 - sue.q()) / ((1.0 - sue.p()) * sue.q());
  EXPECT_NEAR(std::log(ratio), eps, 1e-9);
}

TEST(OueTest, ProbabilitiesAndLdpRatio) {
  const double eps = 3.0;
  Oue oue(10, eps);
  EXPECT_DOUBLE_EQ(oue.p(), 0.5);
  EXPECT_NEAR(oue.q(), 1.0 / (std::exp(eps) + 1.0), 1e-12);
  const double ratio = oue.p() * (1.0 - oue.q()) / ((1.0 - oue.p()) * oue.q());
  EXPECT_NEAR(std::log(ratio), eps, 1e-9);
}

TEST(FactoryTest, ProducesCorrectTypes) {
  for (Protocol p : AllProtocols()) {
    auto oracle = MakeOracle(p, 8, 1.0);
    EXPECT_EQ(oracle->protocol(), p);
    EXPECT_EQ(oracle->k(), 8);
    EXPECT_DOUBLE_EQ(oracle->epsilon(), 1.0);
    EXPECT_GT(oracle->p(), oracle->q());
  }
}

TEST(FactoryTest, ProtocolNames) {
  EXPECT_STREQ(ProtocolName(Protocol::kGrr), "GRR");
  EXPECT_STREQ(ProtocolName(Protocol::kOlh), "OLH");
  EXPECT_STREQ(ProtocolName(Protocol::kSs), "SS");
  EXPECT_STREQ(ProtocolName(Protocol::kSue), "SUE");
  EXPECT_STREQ(ProtocolName(Protocol::kOue), "OUE");
  EXPECT_EQ(AllProtocols().size(), 5u);
}

TEST(OracleValidationTest, RejectsBadParameters) {
  for (Protocol p : AllProtocols()) {
    EXPECT_THROW(MakeOracle(p, 1, 1.0), InvalidArgumentError);
    EXPECT_THROW(MakeOracle(p, 8, 0.0), InvalidArgumentError);
    EXPECT_THROW(MakeOracle(p, 8, -2.0), InvalidArgumentError);
  }
}

// ---------------------------------------------------------------------------
// Empirical LDP bound (GRR admits a direct output-distribution check).
// ---------------------------------------------------------------------------

TEST(GrrTest, EmpiricalLdpBound) {
  const double eps = 1.0;
  const int k = 4;
  Grr grr(k, eps);
  Rng rng(99);
  const int trials = 200000;
  // Output histograms conditioned on two different inputs.
  std::vector<double> h0(k, 0.0), h1(k, 0.0);
  for (int t = 0; t < trials; ++t) {
    ++h0[grr.Randomize(0, rng).value];
    ++h1[grr.Randomize(1, rng).value];
  }
  for (int y = 0; y < k; ++y) {
    const double r = (h0[y] / trials) / (h1[y] / trials);
    EXPECT_LE(r, std::exp(eps) * 1.1) << "y=" << y;
    EXPECT_GE(r, std::exp(-eps) / 1.1) << "y=" << y;
  }
}

// ---------------------------------------------------------------------------
// Parameterized estimator properties across protocols, eps and k.
// ---------------------------------------------------------------------------

using ParamTuple = std::tuple<Protocol, double, int>;

class EstimatorPropertyTest : public ::testing::TestWithParam<ParamTuple> {};

TEST_P(EstimatorPropertyTest, UnbiasedOnSkewedData) {
  auto [protocol, eps, k] = GetParam();
  auto oracle = MakeOracle(protocol, k, eps);

  // Skewed ground truth: Zipf over k values.
  std::vector<double> truth = ZipfDistribution(k, 1.2);
  Rng rng(1234 + k);
  CategoricalSampler sampler(truth);
  const int n = 60000;
  std::vector<int> values(n);
  for (int i = 0; i < n; ++i) values[i] = sampler.Sample(rng);
  auto actual = EmpiricalFrequency(values, k);

  auto est = oracle->EstimateFrequencies(values, rng);
  ASSERT_EQ(static_cast<int>(est.size()), k);

  // Tolerance: 5 standard deviations of the estimator at each frequency.
  for (int v = 0; v < k; ++v) {
    const double sd = std::sqrt(oracle->EstimatorVariance(n, actual[v]));
    EXPECT_NEAR(est[v], actual[v], 5.0 * sd + 1e-6)
        << ProtocolName(protocol) << " eps=" << eps << " k=" << k
        << " v=" << v;
  }
}

TEST_P(EstimatorPropertyTest, EstimatesSumNearOne) {
  auto [protocol, eps, k] = GetParam();
  auto oracle = MakeOracle(protocol, k, eps);
  Rng rng(777 + k);
  const int n = 40000;
  std::vector<int> values(n);
  for (int i = 0; i < n; ++i) {
    values[i] = static_cast<int>(rng.UniformInt(k));
  }
  auto est = oracle->EstimateFrequencies(values, rng);
  double sum = 0.0;
  for (double f : est) sum += f;
  // GRR/SS sum to ~1 structurally; UE/OLH only in expectation.
  double tol = 6.0 * std::sqrt(static_cast<double>(k) *
                               oracle->EstimatorVariance(n, 1.0 / k));
  EXPECT_NEAR(sum, 1.0, tol + 1e-6)
      << ProtocolName(protocol) << " eps=" << eps << " k=" << k;
}

TEST_P(EstimatorPropertyTest, AttackPredictInDomain) {
  auto [protocol, eps, k] = GetParam();
  auto oracle = MakeOracle(protocol, k, eps);
  Rng rng(555);
  for (int t = 0; t < 200; ++t) {
    int v = static_cast<int>(rng.UniformInt(k));
    Report r = oracle->Randomize(v, rng);
    int pred = oracle->AttackPredict(r, rng);
    EXPECT_GE(pred, 0);
    EXPECT_LT(pred, k);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, EstimatorPropertyTest,
    ::testing::Combine(::testing::Values(Protocol::kGrr, Protocol::kOlh,
                                         Protocol::kSs, Protocol::kSue,
                                         Protocol::kOue),
                       ::testing::Values(0.5, 1.0, 4.0),
                       ::testing::Values(2, 5, 32)),
    [](const ::testing::TestParamInfo<ParamTuple>& info) {
      std::string name = ProtocolName(std::get<0>(info.param));
      name += "_eps";
      name += std::to_string(static_cast<int>(std::get<1>(info.param) * 10));
      name += "_k" + std::to_string(std::get<2>(info.param));
      return name;
    });

// ---------------------------------------------------------------------------
// Variance formula versus empirical estimator variance.
// ---------------------------------------------------------------------------

class VarianceMatchTest : public ::testing::TestWithParam<Protocol> {};

TEST_P(VarianceMatchTest, FormulaMatchesEmpiricalVariance) {
  const Protocol protocol = GetParam();
  const int k = 6;
  const double eps = 1.0;
  const int n = 2000;
  const int runs = 300;
  auto oracle = MakeOracle(protocol, k, eps);
  Rng rng(31337);

  // All users hold value 0, so f(0) = 1 and f(v != 0) = 0.
  std::vector<int> values(n, 0);
  std::vector<double> est_v1(runs);
  for (int r = 0; r < runs; ++r) {
    est_v1[r] = oracle->EstimateFrequencies(values, rng)[1];
  }
  const double mean = Mean(est_v1);
  double var = 0.0;
  for (double e : est_v1) var += (e - mean) * (e - mean);
  var /= (runs - 1);

  const double predicted = oracle->EstimatorVariance(n, 0.0);
  EXPECT_NEAR(var, predicted, 0.5 * predicted)
      << ProtocolName(protocol);
  EXPECT_NEAR(mean, 0.0, 5.0 * std::sqrt(predicted / runs));
}

INSTANTIATE_TEST_SUITE_P(AllProtocols, VarianceMatchTest,
                         ::testing::Values(Protocol::kGrr, Protocol::kSue,
                                           Protocol::kOue),
                         [](const ::testing::TestParamInfo<Protocol>& info) {
                           return ProtocolName(info.param);
                         });

// ---------------------------------------------------------------------------
// Structural report checks.
// ---------------------------------------------------------------------------

TEST(SsTest, SubsetSizeAndMembership) {
  Ss ss(20, 1.0);
  Rng rng(2);
  int contains_true = 0;
  const int trials = 20000;
  for (int t = 0; t < trials; ++t) {
    Report r = ss.Randomize(7, rng);
    ASSERT_EQ(static_cast<int>(r.subset.size()), ss.omega());
    for (std::size_t i = 1; i < r.subset.size(); ++i) {
      ASSERT_LT(r.subset[i - 1], r.subset[i]);  // sorted, distinct
    }
    for (int v : r.subset) {
      ASSERT_GE(v, 0);
      ASSERT_LT(v, 20);
    }
    bool has = false;
    for (int v : r.subset) has |= (v == 7);
    contains_true += has;
  }
  EXPECT_NEAR(static_cast<double>(contains_true) / trials, ss.p(), 0.01);
}

TEST(UnaryEncodingTest, OneHot) {
  auto bits = UnaryEncoding::OneHot(2, 5);
  EXPECT_EQ(bits, (std::vector<std::uint8_t>{0, 0, 1, 0, 0}));
  EXPECT_THROW(UnaryEncoding::OneHot(5, 5), InvalidArgumentError);
  EXPECT_THROW(UnaryEncoding::OneHot(-1, 5), InvalidArgumentError);
}

TEST(UnaryEncodingTest, PerturbBitsRates) {
  Rng rng(3);
  std::vector<std::uint8_t> ones(1, 1), zeros(1, 0);
  int kept = 0, flipped = 0;
  const int trials = 50000;
  for (int t = 0; t < trials; ++t) {
    kept += UnaryEncoding::PerturbBits(ones, 0.75, 0.2, rng)[0];
    flipped += UnaryEncoding::PerturbBits(zeros, 0.75, 0.2, rng)[0];
  }
  EXPECT_NEAR(static_cast<double>(kept) / trials, 0.75, 0.01);
  EXPECT_NEAR(static_cast<double>(flipped) / trials, 0.2, 0.01);
}

TEST(OlhTest, SupportCountsHashConsistent) {
  Olh olh(12, 1.0);
  Rng rng(4);
  Report r = olh.Randomize(5, rng);
  std::vector<long long> counts(12, 0);
  olh.AccumulateSupport(r, &counts);
  // Support = preimage size of the reported cell; on average k/g values.
  long long total = 0;
  for (long long c : counts) total += c;
  EXPECT_GE(total, 0);
  EXPECT_LE(total, 12);
}

TEST(OlhTest, CustomGConstructorMatchesTheory) {
  // General local hashing: p' = e^eps/(e^eps + g - 1), q = 1/g.
  const double eps = 2.0;
  const double e = std::exp(eps);
  for (int g : {2, 5, 16, 128}) {
    Olh lh(74, eps, g);
    EXPECT_EQ(lh.g(), g);
    EXPECT_NEAR(lh.p_prime(), e / (e + g - 1), 1e-12);
    EXPECT_NEAR(lh.q(), 1.0 / g, 1e-12);
  }
  EXPECT_THROW(Olh(74, eps, 1), InvalidArgumentError);
}

TEST(OlhTest, DefaultGIsVarianceOptimalAmongSweep) {
  // Var ~ q(1-q)/(p-q)^2, minimized at the continuous g* = e^eps + 1. The
  // default g = round(e^eps) + 1 discretizes g*, so the best integer g can
  // undercut it by a sliver (at eps = 1.5, g = 6 beats g = 5 by 0.02%);
  // assert the default is within 0.1% of every swept alternative.
  const double eps = 1.5;
  Olh optimal(74, eps);
  const double best = optimal.EstimatorVariance(1);
  for (int g : {2, 3, 4, 6, 8, 12, 24, 48}) {
    Olh lh(74, eps, g);
    EXPECT_GE(lh.EstimatorVariance(1), best * (1 - 1e-3)) << "g=" << g;
  }
}

TEST(OlhTest, LargerGRaisesAttackAccuracy) {
  // Fewer values share a hash cell as g grows, so the preimage adversary
  // gains accuracy — the privacy side of the g knob.
  const int k = 74;
  const double eps = 1.0;
  Rng rng(99);
  std::vector<int> values(6000);
  for (int& v : values) v = static_cast<int>(rng.UniformInt(k));
  double prev = 0.0;
  for (int g : {2, 8, 64}) {
    Olh lh(k, eps, g);
    const double acc = attack::EmpiricalAttackAccPercent(lh, values, rng);
    EXPECT_GT(acc, prev * 0.9) << "g=" << g;  // monotone up to MC noise
    prev = acc;
  }
  EXPECT_GT(prev, 2.0);  // g = 64 on k = 74: near-GRR identifiability
}

TEST(GrrTest, HighEpsilonReportsTruth) {
  Grr grr(10, 20.0);
  Rng rng(6);
  for (int t = 0; t < 100; ++t) {
    EXPECT_EQ(grr.Randomize(3, rng).value, 3);
  }
}

TEST(GrrTest, PerturbValidation) {
  Rng rng(7);
  EXPECT_THROW(Grr::Perturb(0, 1, 1.0, rng), InvalidArgumentError);
  EXPECT_THROW(Grr::Perturb(5, 5, 1.0, rng), InvalidArgumentError);
  EXPECT_THROW(Grr::Perturb(0, 5, 0.0, rng), InvalidArgumentError);
}

}  // namespace
}  // namespace ldpr::fo
