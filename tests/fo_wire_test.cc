// Tests for the wire codec (fo/wire): BitWriter/BitReader primitives,
// lossless round-trips for every protocol across a (k, eps) sweep, exact
// agreement between serialized width and the communication-cost model, and
// malformed-input rejection (truncated buffers, wrong payload shapes).

#include <algorithm>
#include <tuple>

#include <gtest/gtest.h>

#include "core/check.h"
#include "core/rng.h"
#include "fo/comm_cost.h"
#include "fo/factory.h"
#include "fo/wire.h"

namespace ldpr::fo {
namespace {

TEST(BitIoTest, WriteReadRoundTrip) {
  BitWriter writer;
  writer.Write(0b101, 3);
  writer.Write(0xDEADBEEFCAFEBABEULL, 64);
  writer.Write(0, 0);  // zero-width write is a no-op
  writer.Write(1, 1);
  EXPECT_EQ(writer.bit_count(), 68);
  EXPECT_EQ(static_cast<int>(writer.bytes().size()), 9);  // ceil(68/8)

  BitReader reader(writer.bytes());
  EXPECT_EQ(reader.Read(3), 0b101u);
  EXPECT_EQ(reader.Read(64), 0xDEADBEEFCAFEBABEULL);
  EXPECT_EQ(reader.Read(1), 1u);
  EXPECT_EQ(reader.bits_consumed(), 68);
}

TEST(BitIoTest, RejectsOversizedValuesAndExhaustion) {
  BitWriter writer;
  EXPECT_THROW(writer.Write(4, 2), InvalidArgumentError);  // 4 needs 3 bits
  EXPECT_THROW(writer.Write(0, 65), InvalidArgumentError);
  writer.Write(3, 2);
  BitReader reader(writer.bytes());
  // The buffer holds one byte (8 bits); reading past it must throw even
  // though the padding bits physically exist only up to the byte boundary.
  reader.Read(8);
  EXPECT_THROW(reader.Read(1), InvalidArgumentError);
}

bool SameReport(Protocol protocol, const Report& a, const Report& b) {
  switch (protocol) {
    case Protocol::kGrr:
      return a.value == b.value;
    case Protocol::kOlh:
      return a.value == b.value && a.hash_seed == b.hash_seed;
    case Protocol::kSs: {
      std::vector<int> sa = a.subset, sb = b.subset;
      std::sort(sa.begin(), sa.end());
      std::sort(sb.begin(), sb.end());
      return sa == sb;
    }
    case Protocol::kSue:
    case Protocol::kOue:
      return a.bits == b.bits;
  }
  return false;
}

// Round-trip sweep over protocols x domain sizes x budgets.
class WireRoundTripTest
    : public ::testing::TestWithParam<std::tuple<Protocol, int, double>> {};

TEST_P(WireRoundTripTest, LosslessAndExactWidth) {
  const auto [protocol, k, eps] = GetParam();
  auto oracle = MakeOracle(protocol, k, eps);
  Rng rng(31 + k);
  for (int trial = 0; trial < 50; ++trial) {
    const int value = static_cast<int>(rng.UniformInt(k));
    Report original = oracle->Randomize(value, rng);
    std::vector<std::uint8_t> bytes = SerializeReport(*oracle, original);
    // Byte budget matches the bit width exactly.
    const int bits = SerializedReportBits(*oracle);
    EXPECT_EQ(static_cast<int>(bytes.size()), (bits + 7) / 8);
    Report decoded = DeserializeReport(*oracle, bytes);
    EXPECT_TRUE(SameReport(protocol, original, decoded))
        << ProtocolName(protocol) << " trial " << trial;
  }
}

INSTANTIATE_TEST_SUITE_P(
    ProtocolGrid, WireRoundTripTest,
    ::testing::Combine(::testing::Values(Protocol::kGrr, Protocol::kOlh,
                                         Protocol::kSs, Protocol::kSue,
                                         Protocol::kOue),
                       ::testing::Values(2, 7, 41, 74),
                       ::testing::Values(1.0, 4.0)));

TEST(WireTest, WidthMatchesCommCostModelForValueProtocols) {
  // ReportBits (the price) equals SerializedReportBits (the codec) for
  // every protocol — OLH priced with the default 64-bit seed.
  for (Protocol protocol : AllProtocols()) {
    for (int k : {2, 16, 74}) {
      for (double eps : {1.0, 4.0}) {
        auto oracle = MakeOracle(protocol, k, eps);
        EXPECT_DOUBLE_EQ(ReportBits(protocol, k, eps),
                         SerializedReportBits(*oracle))
            << ProtocolName(protocol) << " k=" << k << " eps=" << eps;
      }
    }
  }
}

TEST(WireTest, DecodedReportsEstimateLikeOriginals) {
  // End-to-end: estimates computed from decoded reports are bit-identical
  // to estimates from the originals (the codec is transparent to the
  // aggregation pipeline).
  const int k = 16;
  const double eps = 2.0;
  const int n = 4000;
  for (Protocol protocol : AllProtocols()) {
    auto oracle = MakeOracle(protocol, k, eps);
    Rng rng(5);
    std::vector<long long> counts_orig(k, 0), counts_decoded(k, 0);
    for (int i = 0; i < n; ++i) {
      Report original = oracle->Randomize(i % k, rng);
      Report decoded =
          DeserializeReport(*oracle, SerializeReport(*oracle, original));
      oracle->AccumulateSupport(original, &counts_orig);
      oracle->AccumulateSupport(decoded, &counts_decoded);
    }
    EXPECT_EQ(counts_orig, counts_decoded) << ProtocolName(protocol);
  }
}

TEST(WireTest, RejectsMalformedPayloads) {
  Rng rng(1);
  auto grr = MakeOracle(Protocol::kGrr, 8, 1.0);
  Report bad;
  bad.value = 8;  // out of range
  EXPECT_THROW(SerializeReport(*grr, bad), InvalidArgumentError);
  bad.value = -1;
  EXPECT_THROW(SerializeReport(*grr, bad), InvalidArgumentError);

  auto ss = MakeOracle(Protocol::kSs, 12, 1.0);
  Report ss_report = ss->Randomize(0, rng);
  Report wrong_size = ss_report;
  wrong_size.subset.push_back(wrong_size.subset.back());
  EXPECT_THROW(SerializeReport(*ss, wrong_size), InvalidArgumentError);

  auto sue = MakeOracle(Protocol::kSue, 8, 1.0);
  Report short_bits;
  short_bits.bits.assign(7, 0);
  EXPECT_THROW(SerializeReport(*sue, short_bits), InvalidArgumentError);
  Report bad_bit;
  bad_bit.bits.assign(8, 0);
  bad_bit.bits[3] = 2;
  EXPECT_THROW(SerializeReport(*sue, bad_bit), InvalidArgumentError);
}

// Fuzz-style failure injection: feeding arbitrary bytes to the decoder
// must either produce a structurally valid report or throw
// InvalidArgumentError — never crash or return out-of-contract payloads.
TEST(WireTest, RandomBuffersDecodeSafely) {
  Rng rng(77);
  for (Protocol protocol : AllProtocols()) {
    auto oracle = MakeOracle(protocol, 12, 1.3);
    const int max_bytes = (SerializedReportBits(*oracle) + 7) / 8 + 2;
    for (int trial = 0; trial < 300; ++trial) {
      std::vector<std::uint8_t> bytes(rng.UniformInt(max_bytes + 1));
      for (auto& b : bytes) b = static_cast<std::uint8_t>(rng.UniformInt(256));
      try {
        Report decoded = DeserializeReport(*oracle, bytes);
        // Contract on success: the payload re-serializes losslessly.
        std::vector<std::uint8_t> round = SerializeReport(*oracle, decoded);
        Report again = DeserializeReport(*oracle, round);
        EXPECT_TRUE(SameReport(protocol, decoded, again));
      } catch (const InvalidArgumentError&) {
        // Rejected: acceptable for malformed input.
      }
    }
  }
}

TEST(WireTest, RejectsTruncatedBuffers) {
  Rng rng(2);
  auto oue = MakeOracle(Protocol::kOue, 32, 1.0);
  Report report = oue->Randomize(3, rng);
  std::vector<std::uint8_t> bytes = SerializeReport(*oue, report);
  bytes.pop_back();
  EXPECT_THROW(DeserializeReport(*oue, bytes), InvalidArgumentError);

  auto olh = MakeOracle(Protocol::kOlh, 100, 2.0);
  Report olh_report = olh->Randomize(3, rng);
  std::vector<std::uint8_t> olh_bytes = SerializeReport(*olh, olh_report);
  olh_bytes.resize(4);
  EXPECT_THROW(DeserializeReport(*olh, olh_bytes), InvalidArgumentError);
}

}  // namespace
}  // namespace ldpr::fo
