// Cross-module integration tests for the extension subsystems (adaptive
// selection, communication costs, uniqueness prediction, privacy accountant,
// pool inference): each test exercises at least two modules together on a
// realistic (synthetic-census) population, mirroring how the bench harnesses
// and the CLI compose them.

#include <algorithm>
#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "attack/pool.h"
#include "attack/uniqueness.h"
#include "core/metrics.h"
#include "data/synthetic.h"
#include "fo/comm_cost.h"
#include "multidim/adaptive.h"
#include "multidim/rsfd.h"
#include "privacy/accountant.h"

namespace ldpr {
namespace {

double RsFdMse(const data::Dataset& ds, multidim::RsFdVariant variant,
               double eps, Rng& rng) {
  multidim::RsFd protocol(variant, ds.domain_sizes(), eps);
  std::vector<multidim::MultidimReport> reports;
  reports.reserve(ds.n());
  for (int i = 0; i < ds.n(); ++i) {
    reports.push_back(protocol.RandomizeUser(ds.Record(i), rng));
  }
  return MseAvg(ds.Marginals(), protocol.Estimate(reports));
}

double RsFdAdaptiveMse(const data::Dataset& ds, double eps, Rng& rng) {
  multidim::RsFdAdaptive protocol(ds.domain_sizes(), eps);
  std::vector<multidim::MultidimReport> reports;
  reports.reserve(ds.n());
  for (int i = 0; i < ds.n(); ++i) {
    reports.push_back(protocol.RandomizeUser(ds.Record(i), rng));
  }
  return MseAvg(ds.Marginals(), protocol.Estimate(reports));
}

TEST(ExtensionsIntegrationTest, AdaptiveTracksLowerEnvelopeOfFixedVariants) {
  // On the heterogeneous ACS attribute profile the adaptive estimator's MSE
  // should not exceed the better fixed variant by more than Monte-Carlo
  // noise, at both a low and a high budget.
  data::Dataset ds = data::AcsEmploymentLike(7, /*scale=*/0.5);
  for (double eps : {1.0, 6.0}) {
    Rng rng(100 + static_cast<int>(eps));
    double adp = 0.0, grr = 0.0, oue = 0.0;
    const int runs = 3;
    for (int r = 0; r < runs; ++r) {
      adp += RsFdAdaptiveMse(ds, eps, rng);
      grr += RsFdMse(ds, multidim::RsFdVariant::kGrr, eps, rng);
      oue += RsFdMse(ds, multidim::RsFdVariant::kOueZ, eps, rng);
    }
    EXPECT_LE(adp / runs, 1.35 * std::min(grr, oue) / runs) << "eps=" << eps;
  }
}

TEST(ExtensionsIntegrationTest, AdaptiveChoicesAgreeWithCommCostOnExtremes) {
  // The variance-only ADP rule and the cost-aware recommendation agree on
  // the extremes: tiny domains use GRR under both, and neither ever picks a
  // unary encoding for very large domains at small eps (comm rule) / both
  // pick OUE-family for large k (variance rule).
  for (double eps : {0.5, 1.0, 2.0}) {
    EXPECT_EQ(multidim::AdaptiveSmpChoice(2, eps), fo::Protocol::kGrr);
    EXPECT_EQ(fo::RecommendProtocol(2, eps), fo::Protocol::kGrr);
    EXPECT_EQ(multidim::AdaptiveSmpChoice(4096, eps), fo::Protocol::kOue);
    const fo::Protocol comm = fo::RecommendProtocol(100000, eps);
    EXPECT_TRUE(comm == fo::Protocol::kOlh || comm == fo::Protocol::kSs ||
                comm == fo::Protocol::kGrr)
        << fo::ProtocolName(comm);
  }
}

TEST(ExtensionsIntegrationTest, UniquenessPredictsProtocolOrdering) {
  // The closed-form predicted RID-ACC reproduces Fig. 2's protocol ordering
  // (GRR ≈ SS above SUE above OUE ≈ OLH) on census-shaped data without
  // running the empirical pipeline. eps = 8 sits past the SUE/OUE crossover
  // (Fig. 1 places it between eps = 5 and 6).
  data::Dataset ds = data::AdultLike(8, 0.05);
  const std::vector<int> attrs = {0, 1, 2, 3};
  const double eps = 8.0;
  const double grr =
      attack::PredictedRidAccPercent(ds, attrs, fo::Protocol::kGrr, eps, 10);
  const double ss =
      attack::PredictedRidAccPercent(ds, attrs, fo::Protocol::kSs, eps, 10);
  const double sue =
      attack::PredictedRidAccPercent(ds, attrs, fo::Protocol::kSue, eps, 10);
  const double oue =
      attack::PredictedRidAccPercent(ds, attrs, fo::Protocol::kOue, eps, 10);
  const double olh =
      attack::PredictedRidAccPercent(ds, attrs, fo::Protocol::kOlh, eps, 10);
  EXPECT_GT(grr, sue);
  EXPECT_GT(ss, sue);
  EXPECT_GT(sue, oue);
  EXPECT_GT(sue, olh);
}

TEST(ExtensionsIntegrationTest, LedgerMatchesProfilingDisciplines) {
  // The accountant's two disciplines bound each other the same way the
  // profiling attack's two privacy metrics do: after s <= d surveys the
  // non-uniform (memoized) total never exceeds the uniform total, and the
  // gap widens with s.
  const int d = 10;
  const double eps = 1.0;
  Rng rng(3);
  double prev_gap = -1.0;
  for (int s : {1, 4, 7, 10}) {
    const double uniform = privacy::ExpectedSmpTotalEpsilonUniform(d, s, eps);
    const double nonuniform =
        privacy::SimulateSmpLedgers(d, s, eps, true, 8000, rng).mean_total;
    EXPECT_LE(nonuniform, uniform + 1e-9);
    const double gap = uniform - nonuniform;
    EXPECT_GE(gap, prev_gap - 0.05);
    prev_gap = gap;
  }
}

TEST(ExtensionsIntegrationTest, MemoizationFreezesPoolPosterior) {
  // End-to-end version of the longitudinal_pools example: with fresh
  // randomization the attacker's accuracy grows with the number of reports;
  // replaying one memoized report keeps it at the single-report level.
  const int k = 16;
  const double eps = 2.0;
  auto oracle = fo::MakeOracle(fo::Protocol::kOue, k, eps);
  const auto pools = attack::ContiguousPools(k, 4);
  attack::PoolInferenceAttacker attacker(*oracle, pools);
  Rng rng(17);

  const int users = 800;
  int fresh_correct = 0, memo_correct = 0;
  for (int u = 0; u < users; ++u) {
    const int pool = static_cast<int>(rng.UniformInt(4));
    const auto& members = pools[pool];
    std::vector<fo::Report> fresh;
    for (int t = 0; t < 30; ++t) {
      fresh.push_back(
          oracle->Randomize(members[rng.UniformInt(members.size())], rng));
    }
    // Memoization: the client caches one sanitized report and replays it —
    // the adversary's evidence is exactly one report, 30 times.
    std::vector<fo::Report> memo(30, fresh[0]);
    // Feeding the duplicated reports as if independent would *overcount*
    // evidence; the honest evaluation deduplicates to the single report.
    if (attacker.PredictPool(fresh) == pool) ++fresh_correct;
    if (attacker.PredictPool({memo[0]}) == pool) ++memo_correct;
  }
  const double fresh_acc = 100.0 * fresh_correct / users;
  const double memo_acc = 100.0 * memo_correct / users;
  EXPECT_GT(fresh_acc, 80.0);
  EXPECT_LT(memo_acc, 60.0);
  EXPECT_GT(memo_acc, 20.0);  // still above nothing — one report does leak
}

TEST(ExtensionsIntegrationTest, CommCostRanksSolutionsConsistently) {
  // On every census profile, SMP uploads less than RS+FD for UE payloads
  // (one vector versus d vectors) and SPL's GRR upload equals the sum of
  // per-attribute value widths regardless of eps.
  for (auto maker : {&data::AdultLike, &data::AcsEmploymentLike,
                     &data::NurseryLike}) {
    data::Dataset ds = maker(5, 0.02);
    const auto& k = ds.domain_sizes();
    EXPECT_LT(fo::SmpTupleBits(fo::Protocol::kOue, k, 1.0),
              fo::RsFdTupleBits(fo::Protocol::kOue, k, 1.0));
    EXPECT_DOUBLE_EQ(fo::SplTupleBits(fo::Protocol::kGrr, k, 1.0),
                     fo::SplTupleBits(fo::Protocol::kGrr, k, 8.0));
  }
}

}  // namespace
}  // namespace ldpr
