// End-to-end pipelines mirroring the paper's figure configurations at
// reduced scale. These are the "shape" checks of EXPERIMENTS.md in test
// form: who wins, in which direction curves move, and where protections
// kick in.

#include <cmath>

#include <gtest/gtest.h>

#include "attack/aif.h"
#include "attack/profiling.h"
#include "attack/reident.h"
#include "core/metrics.h"
#include "data/priors.h"
#include "data/synthetic.h"
#include "fo/analytic_acc.h"
#include "multidim/rsfd.h"
#include "multidim/rsrfd.h"
#include "multidim/variance.h"

namespace ldpr {
namespace {

ml::GbdtConfig FastGbdt() {
  ml::GbdtConfig config;
  config.num_rounds = 6;
  config.max_depth = 3;
  return config;
}

attack::ReidentConfig FastReident(std::vector<int> top_k = {1, 10}) {
  attack::ReidentConfig config;
  config.top_k = std::move(top_k);
  config.max_targets = 1000;
  return config;
}

double SmpRidAcc(const data::Dataset& ds, fo::Protocol protocol, double eps,
                 int surveys, int top_k, Rng& rng) {
  attack::SurveyPlan plan = attack::MakeSurveyPlan(ds.d(), surveys, rng);
  auto channel = attack::MakeLdpChannel(protocol, ds.domain_sizes(), eps);
  auto snapshots = attack::SimulateSmpProfiling(
      ds, *channel, plan, attack::PrivacyMetricMode::kUniform, rng);
  std::vector<bool> bk(ds.d(), true);
  auto result = attack::ReidentAccuracy(snapshots.back(), ds, bk,
                                        FastReident({top_k}), rng);
  return result.rid_acc_percent[0];
}

// --- Fig. 2 shape: SMP re-identification grows with eps and #surveys, and
// --- GRR is far more vulnerable than OUE.
TEST(IntegrationTest, Fig2SmpReidentShape) {
  data::Dataset ds = data::AdultLike(42, 0.1);
  Rng rng(1);

  double grr_lo = SmpRidAcc(ds, fo::Protocol::kGrr, 1.0, 5, 10, rng);
  double grr_hi = SmpRidAcc(ds, fo::Protocol::kGrr, 8.0, 5, 10, rng);
  double grr_hi_2sv = SmpRidAcc(ds, fo::Protocol::kGrr, 8.0, 2, 10, rng);
  double oue_hi = SmpRidAcc(ds, fo::Protocol::kOue, 8.0, 5, 10, rng);

  EXPECT_GT(grr_hi, grr_lo);          // grows with eps
  EXPECT_GT(grr_hi, grr_hi_2sv);      // grows with #surveys
  EXPECT_GT(grr_hi, 3.0 * oue_hi);    // GRR far above OUE
  EXPECT_GT(grr_hi, 5.0);             // strongly above the ~0.2% baseline
}

// --- Fig. 4 shape: RS+FD collapses the re-identification risk of SMP.
TEST(IntegrationTest, Fig4RsFdCollapsesReident) {
  data::Dataset ds = data::AdultLike(43, 0.05);
  Rng rng(2);

  double smp = SmpRidAcc(ds, fo::Protocol::kGrr, 8.0, 3, 10, rng);

  attack::SurveyPlan plan = attack::MakeSurveyPlan(ds.d(), 3, rng);
  auto snapshots = attack::SimulateRsFdProfiling(
      ds, multidim::RsFdVariant::kGrr, 8.0, plan, 1.0, FastGbdt(), rng);
  std::vector<bool> bk(ds.d(), true);
  auto rsfd_result = attack::ReidentAccuracy(snapshots.back(), ds, bk,
                                             FastReident({10}), rng);
  EXPECT_LT(rsfd_result.rid_acc_percent[0], 0.5 * smp);
}

// --- Fig. 5 shape: RS+RFD with Correct priors beats RS+FD in MSE_avg for
// --- every protocol pairing.
TEST(IntegrationTest, Fig5RsRfdUtilityWins) {
  data::Dataset ds = data::AcsEmploymentLike(44, 0.4);
  Rng rng(3);
  // A lightly-noised prior keeps the comparison about the mechanism rather
  // than about prior noise at this reduced test scale (the paper's exact
  // eps = 0.1 recipe is exercised by the fig05 bench at full scale).
  auto priors = data::BuildPriors(ds, data::PriorKind::kCorrectLaplace, rng,
                                  /*total_central_eps=*/1.0,
                                  data::kAcsEmploymentN);
  auto truth = ds.Marginals();
  const double eps = std::log(4.0);

  struct Pair {
    multidim::RsRfdVariant rfd;
    multidim::RsFdVariant fd;
  };
  for (Pair pair : {Pair{multidim::RsRfdVariant::kGrr,
                         multidim::RsFdVariant::kGrr},
                    Pair{multidim::RsRfdVariant::kOueR,
                         multidim::RsFdVariant::kOueR}}) {
    multidim::RsRfd rsrfd(pair.rfd, ds.domain_sizes(), eps, priors);
    multidim::RsFd rsfd(pair.fd, ds.domain_sizes(), eps);
    // The advantage is deterministic in the closed-form expected MSE (the
    // paper's analytical panel of Fig. 16); single-collection empirical MSE
    // at this scale is dominated by sampling noise, so assert the analytic
    // ordering and that one empirical collection tracks its analytic value.
    const double rfd_analytic =
        multidim::RsRfdApproxMseAvg(rsrfd, ds.n());
    const double fd_analytic = multidim::RsFdApproxMseAvg(
        pair.fd, ds.domain_sizes(), eps, ds.n());
    EXPECT_LT(rfd_analytic, fd_analytic)
        << multidim::RsRfdVariantName(pair.rfd);

    std::vector<multidim::MultidimReport> rfd_reports;
    for (int i = 0; i < ds.n(); ++i) {
      rfd_reports.push_back(rsrfd.RandomizeUser(ds.Record(i), rng));
    }
    const double rfd_empirical = MseAvg(truth, rsrfd.Estimate(rfd_reports));
    EXPECT_GT(rfd_empirical, 0.3 * rfd_analytic);
    EXPECT_LT(rfd_empirical, 3.0 * rfd_analytic);
  }
}

// --- Fig. 16 shape: analytical approximate variance tracks empirical MSE.
TEST(IntegrationTest, Fig16AnalyticalMatchesEmpirical) {
  data::Dataset ds = data::NurseryLike(45, 0.5);
  Rng rng(4);
  const double eps = std::log(3.0);
  multidim::RsFd rsfd(multidim::RsFdVariant::kGrr, ds.domain_sizes(), eps);
  std::vector<multidim::MultidimReport> reports;
  for (int i = 0; i < ds.n(); ++i) {
    reports.push_back(rsfd.RandomizeUser(ds.Record(i), rng));
  }
  double empirical = MseAvg(ds.Marginals(), rsfd.Estimate(reports));
  double analytical = multidim::RsFdApproxMseAvg(
      multidim::RsFdVariant::kGrr, ds.domain_sizes(), eps, ds.n());
  EXPECT_GT(empirical, 0.3 * analytical);
  EXPECT_LT(empirical, 3.0 * analytical);
}

// --- Fig. 12/13 shape: the PIE privacy model leaks far more than eps-LDP at
// --- eps=1 because small-domain attributes travel in the clear.
TEST(IntegrationTest, Fig12PieLeaksMoreThanLdp) {
  data::Dataset ds = data::AdultLike(46, 0.05);
  Rng rng(5);
  attack::SurveyPlan plan = attack::MakeSurveyPlan(ds.d(), 3, rng);
  std::vector<bool> bk(ds.d(), true);

  auto ldp_channel =
      attack::MakeLdpChannel(fo::Protocol::kOue, ds.domain_sizes(), 1.0);
  auto ldp_snapshots = attack::SimulateSmpProfiling(
      ds, *ldp_channel, plan, attack::PrivacyMetricMode::kUniform, rng);
  auto ldp = attack::ReidentAccuracy(ldp_snapshots.back(), ds, bk,
                                     FastReident({10}), rng);

  // beta = 0.5: a loose Bayes-error requirement whose alpha budget lets all
  // small-domain attributes travel in the clear at this population size.
  auto pie_channel = attack::MakePieChannel(fo::Protocol::kOue,
                                            ds.domain_sizes(), 0.5, ds.n());
  auto pie_snapshots = attack::SimulateSmpProfiling(
      ds, *pie_channel, plan, attack::PrivacyMetricMode::kUniform, rng);
  auto pie = attack::ReidentAccuracy(pie_snapshots.back(), ds, bk,
                                     FastReident({10}), rng);

  EXPECT_GT(pie.rid_acc_percent[0], ldp.rid_acc_percent[0]);
}

// --- Fig. 1 consistency: analytic profile accuracy ordering carries to the
// --- empirical SMP attack.
TEST(IntegrationTest, Fig1AnalyticOrderingHoldsEmpirically) {
  data::Dataset ds = data::AdultLike(47, 0.05);
  Rng rng(6);
  double grr = SmpRidAcc(ds, fo::Protocol::kGrr, 6.0, 4, 10, rng);
  double olh = SmpRidAcc(ds, fo::Protocol::kOlh, 6.0, 4, 10, rng);
  EXPECT_GT(grr, olh);
  EXPECT_GT(fo::ExpectedAccUniform(fo::Protocol::kGrr, 6.0,
                                   ds.domain_sizes()),
            fo::ExpectedAccUniform(fo::Protocol::kOlh, 6.0,
                                   ds.domain_sizes()));
}

// --- Fig. 11 shape: the non-uniform privacy metric reduces RID-ACC.
TEST(IntegrationTest, Fig11NonUniformMetricProtects) {
  data::Dataset ds = data::AdultLike(48, 0.05);
  Rng rng(7);
  attack::SurveyPlan plan = attack::MakeSurveyPlan(ds.d(), 5, rng);
  auto channel =
      attack::MakeLdpChannel(fo::Protocol::kGrr, ds.domain_sizes(), 8.0);
  std::vector<bool> bk(ds.d(), true);

  Rng rng_u(8), rng_nu(8);
  auto uni = attack::SimulateSmpProfiling(
      ds, *channel, plan, attack::PrivacyMetricMode::kUniform, rng_u);
  auto nonuni = attack::SimulateSmpProfiling(
      ds, *channel, plan, attack::PrivacyMetricMode::kNonUniform, rng_nu);
  auto acc_u =
      attack::ReidentAccuracy(uni.back(), ds, bk, FastReident({10}), rng);
  auto acc_nu =
      attack::ReidentAccuracy(nonuni.back(), ds, bk, FastReident({10}), rng);
  EXPECT_LT(acc_nu.rid_acc_percent[0], acc_u.rid_acc_percent[0]);
}

// --- Fig. 10 shape: partial background knowledge reduces RID-ACC.
TEST(IntegrationTest, Fig10PartialKnowledgeProtects) {
  data::Dataset ds = data::AdultLike(49, 0.05);
  Rng rng(9);
  attack::SurveyPlan plan = attack::MakeSurveyPlan(ds.d(), 5, rng);
  auto channel =
      attack::MakeLdpChannel(fo::Protocol::kGrr, ds.domain_sizes(), 8.0);
  auto snapshots = attack::SimulateSmpProfiling(
      ds, *channel, plan, attack::PrivacyMetricMode::kUniform, rng);

  std::vector<bool> fk(ds.d(), true);
  // Fixed small PK subset for a deterministic, clearly weaker adversary.
  std::vector<bool> pk(ds.d(), false);
  for (int a = 0; a < ds.d() / 2; ++a) pk[a] = true;

  auto acc_fk = attack::ReidentAccuracy(snapshots.back(), ds, fk,
                                        FastReident({10}), rng);
  auto acc_pk = attack::ReidentAccuracy(snapshots.back(), ds, pk,
                                        FastReident({10}), rng);
  EXPECT_LT(acc_pk.rid_acc_percent[0], acc_fk.rid_acc_percent[0]);
}

}  // namespace
}  // namespace ldpr
