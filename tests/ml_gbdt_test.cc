#include "ml/gbdt.h"

#include <gtest/gtest.h>

#include "core/check.h"
#include "ml/dataset_split.h"
#include "ml/ml_metrics.h"

namespace ldpr::ml {
namespace {

/// Synthetic separable task: label = (x0 > 2) + 2 * (x1 > 1), 4 classes,
/// plus a handful of pure-noise features.
LabeledData SeparableData(int n, Rng& rng, double label_noise = 0.0) {
  LabeledData data;
  for (int i = 0; i < n; ++i) {
    std::vector<int> row(6);
    for (int f = 0; f < 6; ++f) row[f] = static_cast<int>(rng.UniformInt(5));
    int label = (row[0] > 2 ? 1 : 0) + 2 * (row[1] > 1 ? 1 : 0);
    if (label_noise > 0.0 && rng.Bernoulli(label_noise)) {
      label = static_cast<int>(rng.UniformInt(4));
    }
    data.Append(std::move(row), label);
  }
  return data;
}

GbdtConfig SmallConfig() {
  GbdtConfig config;
  config.num_rounds = 10;
  config.max_depth = 4;
  config.num_threads = 2;
  return config;
}

TEST(GbdtTest, LearnsSeparableFunction) {
  Rng rng(1);
  LabeledData data = SeparableData(4000, rng);
  auto split = Split(data, 0.75, rng);

  Gbdt model;
  model.Train(split.train.rows, split.train.labels, 4, SmallConfig(), rng);
  auto pred = model.PredictBatch(split.test.rows);
  EXPECT_GT(Accuracy(split.test.labels, pred), 0.98);
}

TEST(GbdtTest, RobustToLabelNoise) {
  Rng rng(2);
  LabeledData data = SeparableData(6000, rng, 0.2);
  auto split = Split(data, 0.75, rng);
  Gbdt model;
  model.Train(split.train.rows, split.train.labels, 4, SmallConfig(), rng);
  auto pred = model.PredictBatch(split.test.rows);
  // Bayes-optimal accuracy is 0.2*0.25 + 0.8 = 0.85.
  EXPECT_GT(Accuracy(split.test.labels, pred), 0.78);
}

TEST(GbdtTest, ChanceLevelOnPureNoise) {
  Rng rng(3);
  LabeledData data;
  for (int i = 0; i < 3000; ++i) {
    std::vector<int> row(5);
    for (int f = 0; f < 5; ++f) row[f] = static_cast<int>(rng.UniformInt(4));
    data.Append(std::move(row), static_cast<int>(rng.UniformInt(3)));
  }
  auto split = Split(data, 0.7, rng);
  Gbdt model;
  model.Train(split.train.rows, split.train.labels, 3, SmallConfig(), rng);
  auto pred = model.PredictBatch(split.test.rows);
  EXPECT_NEAR(Accuracy(split.test.labels, pred), 1.0 / 3.0, 0.08);
}

TEST(GbdtTest, BinaryClassification) {
  Rng rng(4);
  LabeledData data;
  for (int i = 0; i < 2000; ++i) {
    std::vector<int> row{static_cast<int>(rng.UniformInt(2)),
                         static_cast<int>(rng.UniformInt(3))};
    data.Append(row, row[0]);
  }
  Gbdt model;
  model.Train(data.rows, data.labels, 2, SmallConfig(), rng);
  EXPECT_EQ(model.Predict({0, 1}), 0);
  EXPECT_EQ(model.Predict({1, 1}), 1);
}

TEST(GbdtTest, ProbaSumsToOne) {
  Rng rng(5);
  LabeledData data = SeparableData(1000, rng);
  Gbdt model;
  model.Train(data.rows, data.labels, 4, SmallConfig(), rng);
  auto proba = model.PredictProba(data.rows[0]);
  ASSERT_EQ(proba.size(), 4u);
  double sum = 0.0;
  for (double p : proba) {
    EXPECT_GE(p, 0.0);
    sum += p;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(GbdtTest, PredictsClassPriorWithoutSignalImbalanced) {
  // Heavily imbalanced labels, useless features: accuracy should approach
  // the majority-class rate through the base margin.
  Rng rng(6);
  LabeledData data;
  for (int i = 0; i < 3000; ++i) {
    std::vector<int> row{static_cast<int>(rng.UniformInt(3))};
    data.Append(row, rng.Bernoulli(0.85) ? 0 : 1);
  }
  Gbdt model;
  model.Train(data.rows, data.labels, 2, SmallConfig(), rng);
  auto pred = model.PredictBatch(data.rows);
  EXPECT_GT(Accuracy(data.labels, pred), 0.80);
}

TEST(GbdtTest, Validation) {
  Rng rng(7);
  Gbdt model;
  GbdtConfig config = SmallConfig();
  EXPECT_THROW(model.Train({}, {}, 2, config, rng), InvalidArgumentError);
  EXPECT_THROW(model.Train({{1}}, {0, 1}, 2, config, rng),
               InvalidArgumentError);
  EXPECT_THROW(model.Train({{1}}, {0}, 1, config, rng), InvalidArgumentError);
  EXPECT_THROW(model.Train({{300}}, {0}, 2, config, rng),
               InvalidArgumentError);
  EXPECT_THROW(model.Train({{1}, {2}}, {0, 2}, 2, config, rng),
               InvalidArgumentError);
  EXPECT_THROW(model.Predict({1}), InvalidArgumentError);  // untrained

  LabeledData data = SeparableData(200, rng);
  model.Train(data.rows, data.labels, 4, config, rng);
  EXPECT_THROW(model.Predict({1}), InvalidArgumentError);  // wrong width
}

TEST(GbdtTest, DeterministicGivenSeed) {
  Rng rng1(9), rng2(9);
  LabeledData data = SeparableData(1000, rng1);
  Rng rng1b(10), rng2b(10);
  Gbdt m1, m2;
  GbdtConfig config = SmallConfig();
  m1.Train(data.rows, data.labels, 4, config, rng1b);
  m2.Train(data.rows, data.labels, 4, config, rng2b);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(m1.Predict(data.rows[i]), m2.Predict(data.rows[i]));
  }
}

TEST(GbdtTest, MoreRoundsDoNotHurtSeparableTask) {
  Rng rng(11);
  LabeledData data = SeparableData(3000, rng);
  auto split = Split(data, 0.7, rng);
  GbdtConfig small = SmallConfig();
  small.num_rounds = 2;
  GbdtConfig large = SmallConfig();
  large.num_rounds = 20;
  Gbdt m_small, m_large;
  m_small.Train(split.train.rows, split.train.labels, 4, small, rng);
  m_large.Train(split.train.rows, split.train.labels, 4, large, rng);
  double acc_small =
      Accuracy(split.test.labels, m_small.PredictBatch(split.test.rows));
  double acc_large =
      Accuracy(split.test.labels, m_large.PredictBatch(split.test.rows));
  EXPECT_GE(acc_large, acc_small - 0.02);
}

TEST(DatasetSplitTest, PartitionsData) {
  Rng rng(12);
  LabeledData data = SeparableData(100, rng);
  auto split = Split(data, 0.8, rng);
  EXPECT_EQ(split.train.n(), 80);
  EXPECT_EQ(split.test.n(), 20);
  EXPECT_THROW(Split(data, 0.0, rng), InvalidArgumentError);
  EXPECT_THROW(Split(data, 1.0, rng), InvalidArgumentError);
}

TEST(MlMetricsTest, AccuracyAndConfusion) {
  std::vector<int> truth{0, 0, 1, 1, 2};
  std::vector<int> pred{0, 1, 1, 1, 0};
  EXPECT_DOUBLE_EQ(Accuracy(truth, pred), 0.6);
  auto cm = ConfusionMatrix(truth, pred, 3);
  EXPECT_DOUBLE_EQ(cm[0][0], 0.5);
  EXPECT_DOUBLE_EQ(cm[0][1], 0.5);
  EXPECT_DOUBLE_EQ(cm[1][1], 1.0);
  EXPECT_DOUBLE_EQ(cm[2][0], 1.0);
  EXPECT_GT(MacroF1(truth, pred, 3), 0.0);
  EXPECT_LT(MacroF1(truth, pred, 3), 1.0);
  EXPECT_DOUBLE_EQ(MacroF1(truth, truth, 3), 1.0);
}

}  // namespace
}  // namespace ldpr::ml
