#include "ml/logistic.h"

#include <gtest/gtest.h>

#include "core/check.h"
#include "ml/dataset_split.h"
#include "ml/ml_metrics.h"

namespace ldpr::ml {
namespace {

LabeledData LinearlySeparableData(int n, Rng& rng) {
  // label = 1 iff x0 + x1 >= 4 (features in [0, 4)).
  LabeledData data;
  for (int i = 0; i < n; ++i) {
    std::vector<int> row{static_cast<int>(rng.UniformInt(4)),
                         static_cast<int>(rng.UniformInt(4)),
                         static_cast<int>(rng.UniformInt(4))};
    data.Append(row, row[0] + row[1] >= 4 ? 1 : 0);
  }
  return data;
}

TEST(LogisticTest, LearnsLinearBoundary) {
  Rng rng(1);
  LabeledData data = LinearlySeparableData(3000, rng);
  auto split = Split(data, 0.75, rng);
  LogisticRegression model;
  model.Train(split.train.rows, split.train.labels, 2, LogisticConfig{}, rng);
  auto pred = model.PredictBatch(split.test.rows);
  EXPECT_GT(Accuracy(split.test.labels, pred), 0.95);
}

TEST(LogisticTest, MulticlassOneHotFeatures) {
  // 3 classes keyed by a one-hot coordinate.
  Rng rng(2);
  LabeledData data;
  for (int i = 0; i < 1500; ++i) {
    int c = static_cast<int>(rng.UniformInt(3));
    std::vector<int> row(3, 0);
    row[c] = 1;
    data.Append(row, c);
  }
  LogisticRegression model;
  model.Train(data.rows, data.labels, 3, LogisticConfig{}, rng);
  EXPECT_EQ(model.Predict({1, 0, 0}), 0);
  EXPECT_EQ(model.Predict({0, 1, 0}), 1);
  EXPECT_EQ(model.Predict({0, 0, 1}), 2);
}

TEST(LogisticTest, ProbaSumsToOne) {
  Rng rng(3);
  LabeledData data = LinearlySeparableData(500, rng);
  LogisticRegression model;
  model.Train(data.rows, data.labels, 2, LogisticConfig{}, rng);
  auto p = model.PredictProba(data.rows[0]);
  EXPECT_NEAR(p[0] + p[1], 1.0, 1e-9);
}

TEST(LogisticTest, ChanceOnNoise) {
  Rng rng(4);
  LabeledData data;
  for (int i = 0; i < 2000; ++i) {
    std::vector<int> row{static_cast<int>(rng.UniformInt(4))};
    data.Append(row, static_cast<int>(rng.UniformInt(4)));
  }
  auto split = Split(data, 0.7, rng);
  LogisticRegression model;
  model.Train(split.train.rows, split.train.labels, 4, LogisticConfig{}, rng);
  auto pred = model.PredictBatch(split.test.rows);
  EXPECT_NEAR(Accuracy(split.test.labels, pred), 0.25, 0.08);
}

TEST(LogisticTest, Validation) {
  Rng rng(5);
  LogisticRegression model;
  EXPECT_THROW(model.Train({}, {}, 2, LogisticConfig{}, rng),
               InvalidArgumentError);
  EXPECT_THROW(model.Train({{1}}, {0}, 1, LogisticConfig{}, rng),
               InvalidArgumentError);
  EXPECT_THROW(model.Predict({1}), InvalidArgumentError);
  LabeledData data = LinearlySeparableData(100, rng);
  model.Train(data.rows, data.labels, 2, LogisticConfig{}, rng);
  EXPECT_THROW(model.Predict({1}), InvalidArgumentError);  // wrong width
}

}  // namespace
}  // namespace ldpr::ml
