// Tests for the categorical naive Bayes classifier (ml/naive_bayes):
// closed-form checks of the smoothed probabilities on tiny hand-counted
// datasets, behaviour on separable and pure-noise data, robustness to
// unseen feature values, and a head-to-head with the GBDT on an
// RS+FD-shaped attack problem.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/check.h"
#include "core/rng.h"
#include "ml/ml_metrics.h"
#include "ml/naive_bayes.h"

namespace ldpr::ml {
namespace {

TEST(NaiveBayesTest, HandCountedPosterior) {
  // 4 rows, 1 binary feature, 2 classes:
  //   class 0: x = 0, 0      class 1: x = 0, 1
  const std::vector<std::vector<int>> rows = {{0}, {0}, {0}, {1}};
  const std::vector<int> labels = {0, 0, 1, 1};
  NaiveBayes model;
  model.Train(rows, labels, 2);

  // alpha = 1: P(c) = (2+1)/(4+2) = 1/2 for both classes.
  // P(x=0|0) = (2+1)/(2+2) = 3/4; P(x=0|1) = (1+1)/(2+2) = 1/2.
  auto proba = model.PredictProba({0});
  const double expected0 = (0.5 * 0.75) / (0.5 * 0.75 + 0.5 * 0.5);
  EXPECT_NEAR(proba[0], expected0, 1e-12);
  EXPECT_NEAR(proba[0] + proba[1], 1.0, 1e-12);
  EXPECT_EQ(model.Predict({0}), 0);
  EXPECT_EQ(model.Predict({1}), 1);
}

TEST(NaiveBayesTest, LearnsSeparableData) {
  Rng rng(17);
  std::vector<std::vector<int>> rows;
  std::vector<int> labels;
  for (int i = 0; i < 2000; ++i) {
    const int c = static_cast<int>(rng.UniformInt(3));
    // Feature 0 reveals the class with 90% fidelity; feature 1 is noise.
    const int f0 = rng.Bernoulli(0.9) ? c : static_cast<int>(rng.UniformInt(3));
    rows.push_back({f0, static_cast<int>(rng.UniformInt(5))});
    labels.push_back(c);
  }
  NaiveBayes model;
  model.Train(rows, labels, 3);
  EXPECT_GT(Accuracy(labels, model.PredictBatch(rows)), 0.85);
}

TEST(NaiveBayesTest, PureNoiseStaysNearBaseline) {
  Rng rng(23);
  std::vector<std::vector<int>> rows;
  std::vector<int> labels;
  for (int i = 0; i < 4000; ++i) {
    rows.push_back({static_cast<int>(rng.UniformInt(4)),
                    static_cast<int>(rng.UniformInt(4))});
    labels.push_back(static_cast<int>(rng.UniformInt(4)));
  }
  NaiveBayes model;
  model.Train(rows, labels, 4);
  // Fresh noise for evaluation, same process.
  std::vector<std::vector<int>> test_rows;
  std::vector<int> test_labels;
  for (int i = 0; i < 4000; ++i) {
    test_rows.push_back({static_cast<int>(rng.UniformInt(4)),
                         static_cast<int>(rng.UniformInt(4))});
    test_labels.push_back(static_cast<int>(rng.UniformInt(4)));
  }
  EXPECT_NEAR(Accuracy(test_labels, model.PredictBatch(test_rows)), 0.25,
              0.05);
}

TEST(NaiveBayesTest, UnseenFeatureValuesAreClamped) {
  NaiveBayes model;
  model.Train({{0}, {1}}, {0, 1}, 2);
  // Value 7 never appeared; prediction must not throw.
  EXPECT_NO_THROW(model.Predict({7}));
  EXPECT_EQ(model.Predict({7}), model.Predict({1}));
}

TEST(NaiveBayesTest, SmoothingKeepsProbabilitiesFinite) {
  // Class 1 never sees value 1: without smoothing log P would be -inf.
  NaiveBayes model;
  model.Train({{0}, {0}, {1}}, {1, 1, 0}, 2);
  auto scores = model.PredictLogJoint({1});
  for (double s : scores) {
    EXPECT_TRUE(std::isfinite(s));
  }
}

TEST(NaiveBayesTest, PriorsFollowClassImbalance) {
  // 9:1 imbalance with an uninformative feature: majority class wins.
  std::vector<std::vector<int>> rows(10, {0});
  std::vector<int> labels(10, 0);
  labels[9] = 1;
  NaiveBayes model;
  model.Train(rows, labels, 2);
  EXPECT_EQ(model.Predict({0}), 0);
  auto proba = model.PredictProba({0});
  EXPECT_GT(proba[0], 0.7);
}

TEST(NaiveBayesTest, RejectsInvalidInput) {
  NaiveBayes model;
  EXPECT_THROW(model.Train({}, {}, 2), InvalidArgumentError);
  EXPECT_THROW(model.Train({{0}}, {0, 1}, 2), InvalidArgumentError);
  EXPECT_THROW(model.Train({{0}}, {0}, 1), InvalidArgumentError);
  EXPECT_THROW(model.Train({{0}}, {2}, 2), InvalidArgumentError);
  EXPECT_THROW(model.Train({{-1}}, {0}, 2), InvalidArgumentError);
  NaiveBayesConfig config;
  config.alpha = 0.0;
  EXPECT_THROW(model.Train({{0}}, {0}, 2, config), InvalidArgumentError);
  // Strong exception safety: failed Train calls leave the model untrained.
  EXPECT_FALSE(model.trained());
  EXPECT_THROW(model.Predict({0}), InvalidArgumentError);  // untrained
  model.Train({{0, 1}}, {0}, 2);
  EXPECT_THROW(model.Predict({0}), InvalidArgumentError);  // wrong width
}

TEST(NaiveBayesTest, BatchMatchesScalarPrediction) {
  Rng rng(5);
  std::vector<std::vector<int>> rows;
  std::vector<int> labels;
  for (int i = 0; i < 300; ++i) {
    const int c = static_cast<int>(rng.UniformInt(2));
    rows.push_back({c, static_cast<int>(rng.UniformInt(3))});
    labels.push_back(c);
  }
  NaiveBayes model;
  model.Train(rows, labels, 2);
  auto batch = model.PredictBatch(rows);
  for (std::size_t i = 0; i < rows.size(); ++i) {
    EXPECT_EQ(batch[i], model.Predict(rows[i]));
  }
}

}  // namespace
}  // namespace ldpr::ml
