// Tests for the adaptive per-attribute protocol selection (multidim/adaptive):
// the choice rules against closed-form variances, estimator unbiasedness of
// SMP[ADP] and RS+FD[ADP] on simulated populations, and the guarantee that
// the adaptive variance never exceeds either fixed alternative.

#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "attack/aif.h"
#include "core/check.h"
#include "data/synthetic.h"
#include "fo/factory.h"
#include "multidim/adaptive.h"
#include "multidim/variance.h"

namespace ldpr::multidim {
namespace {

// ---------------------------------------------------------------------------
// Choice rules.

TEST(AdaptiveChoiceTest, SmpMatchesWangRule) {
  // GRR wins iff k < 3 e^eps + 2 (Wang et al. '17).
  for (double eps : {0.5, 1.0, 2.0, 4.0}) {
    const double threshold = 3.0 * std::exp(eps) + 2.0;
    for (int k : {2, 3, 5, 10, 25, 60, 200}) {
      const fo::Protocol expected = (k < threshold) ? fo::Protocol::kGrr
                                                    : fo::Protocol::kOue;
      EXPECT_EQ(AdaptiveSmpChoice(k, eps), expected)
          << "k=" << k << " eps=" << eps << " threshold=" << threshold;
    }
  }
}

TEST(AdaptiveChoiceTest, RsFdChoiceMinimizesVariance) {
  for (int d : {2, 5, 10}) {
    for (int k : {2, 4, 16, 64, 256}) {
      for (double eps : {0.5, 1.0, 2.0, 4.0}) {
        RsFdVariant choice = AdaptiveRsFdChoice(k, d, eps);
        const double var_choice = RsFdVariance(choice, k, d, eps, 1, 0.0);
        const double var_grr =
            RsFdVariance(RsFdVariant::kGrr, k, d, eps, 1, 0.0);
        const double var_oue =
            RsFdVariance(RsFdVariant::kOueZ, k, d, eps, 1, 0.0);
        EXPECT_LE(var_choice, std::min(var_grr, var_oue) * (1 + 1e-12))
            << "k=" << k << " d=" << d << " eps=" << eps;
      }
    }
  }
}

TEST(AdaptiveChoiceTest, GrrWinsSmallDomainsOueWinsLargeOnes) {
  EXPECT_EQ(AdaptiveRsFdChoice(2, 2, 1.0), RsFdVariant::kGrr);
  EXPECT_EQ(AdaptiveRsFdChoice(256, 2, 1.0), RsFdVariant::kOueZ);
}

TEST(AdaptiveChoiceTest, UniformFakeDataPenalizesGrrAsDGrows) {
  // RS+FD's uniform fake values land on each of GRR's k categories with
  // probability (d-1)/(dk), inflating gamma and the variance; OUE-z fake
  // vectors only contribute q per bit. Hence the GRR region shrinks with d:
  // at k = 2, GRR wins for d = 2 but loses already at d = 10.
  EXPECT_EQ(AdaptiveRsFdChoice(2, 2, 1.0), RsFdVariant::kGrr);
  EXPECT_EQ(AdaptiveRsFdChoice(2, 10, 1.0), RsFdVariant::kOueZ);
}

TEST(AdaptiveChoiceTest, RejectsInvalidArguments) {
  EXPECT_THROW(AdaptiveSmpChoice(1, 1.0), InvalidArgumentError);
  EXPECT_THROW(AdaptiveSmpChoice(4, 0.0), InvalidArgumentError);
  EXPECT_THROW(AdaptiveRsFdChoice(4, 1, 1.0), InvalidArgumentError);
  EXPECT_THROW(AdaptiveRsFdChoice(4, 3, -2.0), InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// SMP[ADP].

TEST(SmpAdaptiveTest, MixedChoicesOnHeterogeneousDomains) {
  // eps = 1: threshold = 3e + 2 ~ 10.15, so k = 74 -> OUE, k = 7 -> GRR.
  SmpAdaptive smp({74, 7, 16}, 1.0);
  EXPECT_EQ(smp.choice(0), fo::Protocol::kOue);
  EXPECT_EQ(smp.choice(1), fo::Protocol::kGrr);
  EXPECT_NE(smp.choice(2), fo::Protocol::kSue);  // never SUE
}

TEST(SmpAdaptiveTest, RejectsBadConstruction) {
  EXPECT_THROW(SmpAdaptive({5}, 1.0), InvalidArgumentError);
  EXPECT_THROW(SmpAdaptive({5, 5}, 0.0), InvalidArgumentError);
}

TEST(SmpAdaptiveTest, ReportCarriesChosenEncoding) {
  SmpAdaptive smp({74, 3}, 1.0);
  Rng rng(11);
  SmpReport r0 = smp.RandomizeUserAttribute({10, 1}, 0, rng);
  EXPECT_EQ(r0.attribute, 0);
  EXPECT_EQ(static_cast<int>(r0.report.bits.size()), 74);  // OUE payload
  SmpReport r1 = smp.RandomizeUserAttribute({10, 1}, 1, rng);
  EXPECT_EQ(r1.attribute, 1);
  EXPECT_TRUE(r1.report.bits.empty());  // GRR payload
  EXPECT_GE(r1.report.value, 0);
  EXPECT_LT(r1.report.value, 3);
}

TEST(SmpAdaptiveTest, EstimatesRecoverSkewedFrequencies) {
  const std::vector<int> k = {40, 4};
  SmpAdaptive smp(k, 4.0);
  Rng rng(42);
  const int n = 60000;
  std::vector<SmpReport> reports;
  reports.reserve(n);
  // Attribute 0: everyone holds value 3. Attribute 1: 70/30 split on {0,1}.
  for (int i = 0; i < n; ++i) {
    std::vector<int> record = {3, rng.Bernoulli(0.3) ? 1 : 0};
    reports.push_back(smp.RandomizeUser(record, rng));
  }
  auto est = smp.Estimate(reports);
  EXPECT_NEAR(est[0][3], 1.0, 0.05);
  EXPECT_NEAR(est[1][0], 0.7, 0.05);
  EXPECT_NEAR(est[1][1], 0.3, 0.05);
}

// ---------------------------------------------------------------------------
// RS+FD[ADP].

TEST(RsFdAdaptiveTest, PayloadsMatchPerAttributeChoice) {
  RsFdAdaptive adp({74, 3}, 1.0);
  ASSERT_EQ(adp.choice(0), RsFdVariant::kOueZ);
  ASSERT_EQ(adp.choice(1), RsFdVariant::kGrr);
  Rng rng(5);
  MultidimReport r = adp.RandomizeUserWithAttribute({10, 2}, 1, rng);
  EXPECT_EQ(r.sampled_attribute, 1);
  EXPECT_EQ(static_cast<int>(r.bits[0].size()), 74);
  EXPECT_TRUE(r.bits[1].empty());
  EXPECT_EQ(r.values[0], -1);
  EXPECT_GE(r.values[1], 0);
  EXPECT_LT(r.values[1], 3);
}

TEST(RsFdAdaptiveTest, AmplifiedBudgetMatchesRsFd) {
  RsFdAdaptive adp({8, 8, 8}, 1.0);
  RsFd reference(RsFdVariant::kGrr, {8, 8, 8}, 1.0);
  EXPECT_DOUBLE_EQ(adp.amplified_epsilon(), reference.amplified_epsilon());
}

TEST(RsFdAdaptiveTest, ProbabilitiesMatchChosenVariant) {
  RsFdAdaptive adp({74, 3}, 1.0);
  RsFd oue(RsFdVariant::kOueZ, {74, 3}, 1.0);
  RsFd grr(RsFdVariant::kGrr, {74, 3}, 1.0);
  EXPECT_DOUBLE_EQ(adp.p(0), oue.p(0));
  EXPECT_DOUBLE_EQ(adp.q(0), oue.q(0));
  EXPECT_DOUBLE_EQ(adp.p(1), grr.p(1));
  EXPECT_DOUBLE_EQ(adp.q(1), grr.q(1));
}

// Parameterized unbiasedness sweep over (d, eps): the adaptive estimator
// recovers a planted two-value distribution on every attribute within
// Monte-Carlo tolerance.
class RsFdAdaptiveUnbiasednessTest
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(RsFdAdaptiveUnbiasednessTest, RecoversPlantedDistribution) {
  const auto [d, eps] = GetParam();
  std::vector<int> k(d);
  for (int j = 0; j < d; ++j) k[j] = (j % 2 == 0) ? 40 : 4;  // mixed choices
  RsFdAdaptive adp(k, eps);
  Rng rng(1000 + d);
  const int n = 80000;
  std::vector<MultidimReport> reports;
  reports.reserve(n);
  for (int i = 0; i < n; ++i) {
    std::vector<int> record(d);
    for (int j = 0; j < d; ++j) record[j] = rng.Bernoulli(0.25) ? 1 : 0;
    reports.push_back(adp.RandomizeUser(record, rng));
  }
  auto est = adp.Estimate(reports);
  // Tolerance grows with d (each attribute sees ~n/d real reports).
  const double tol = 0.06 * std::sqrt(static_cast<double>(d) / 2.0);
  for (int j = 0; j < d; ++j) {
    EXPECT_NEAR(est[j][0], 0.75, tol) << "attr " << j;
    EXPECT_NEAR(est[j][1], 0.25, tol) << "attr " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(DEpsGrid, RsFdAdaptiveUnbiasednessTest,
                         ::testing::Combine(::testing::Values(2, 4, 8),
                                            ::testing::Values(1.0, 4.0)));

TEST(RsFdAdaptiveTest, MixedReportsEncodeForTheClassifier) {
  // attack::EncodeFeatures must flatten an adaptive report into
  // k_ue-bits-plus-one-label-per-GRR-attribute, all non-negative.
  RsFdAdaptive adp({74, 3}, 1.0);
  ASSERT_EQ(adp.choice(0), RsFdVariant::kOueZ);
  ASSERT_EQ(adp.choice(1), RsFdVariant::kGrr);
  Rng rng(9);
  MultidimReport report = adp.RandomizeUser({10, 2}, rng);
  std::vector<int> features =
      attack::EncodeFeatures(report, adp.domain_sizes());
  ASSERT_EQ(static_cast<int>(features.size()), 74 + 1);
  for (int f = 0; f < 74; ++f) {
    EXPECT_TRUE(features[f] == 0 || features[f] == 1) << f;
  }
  EXPECT_GE(features[74], 0);
  EXPECT_LT(features[74], 3);
}

TEST(RsFdAdaptiveTest, AifAttackRunsAgainstAdaptiveClient) {
  // End-to-end: the NK attack pipeline accepts the adaptive client and
  // produces an accuracy in range; on skewed data at high eps it should
  // beat the 1/d baseline (the ADP tuple contains OUE-z fake data, the
  // most distinguishable kind).
  data::Dataset ds = data::AcsEmploymentLike(77, 0.1);
  RsFdAdaptive protocol(ds.domain_sizes(), 8.0);
  attack::AifConfig config;
  config.model = attack::AifModel::kNk;
  config.gbdt.num_rounds = 6;
  config.gbdt.max_depth = 4;
  Rng rng(13);
  attack::AifResult result = attack::RunAifAttack(
      ds,
      [&](const std::vector<int>& r, Rng& g) {
        return protocol.RandomizeUser(r, g);
      },
      [&](const std::vector<multidim::MultidimReport>& reps) {
        return protocol.Estimate(reps);
      },
      config, rng);
  EXPECT_GT(result.aif_acc_percent, result.baseline_percent * 1.5);
  EXPECT_LE(result.aif_acc_percent, 100.0);
}

TEST(RsFdAdaptiveTest, EstimateValidatesReportShape) {
  RsFdAdaptive adp({8, 8}, 1.0);
  MultidimReport malformed;
  malformed.sampled_attribute = 0;
  malformed.values = {0};  // wrong width
  malformed.bits = {{}, {}};
  EXPECT_THROW(adp.Estimate({malformed}), InvalidArgumentError);
  EXPECT_THROW(adp.Estimate({}), InvalidArgumentError);
}

}  // namespace
}  // namespace ldpr::multidim
