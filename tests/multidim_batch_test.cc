// Exactness of the multidim StreamAggregators: for every solution
// (SPL/SMP/RS+FD/RS+RFD) and every variant, the fused AccumulateRecord path
// must be bit-identical to the scalar RandomizeUser + Estimate path for a
// fixed seed, and merging shard aggregators must equal one aggregator over
// all users.

#include <gtest/gtest.h>

#include "core/rng.h"
#include "core/sampling.h"
#include "multidim/rsfd.h"
#include "multidim/rsrfd.h"
#include "multidim/smp.h"
#include "multidim/spl.h"

namespace ldpr::multidim {
namespace {

constexpr std::uint64_t kSeed = 0x5EED;
constexpr int kUsers = 400;
const std::vector<int> kDomains = {7, 3, 5, 9};

std::vector<std::vector<int>> TestRecords() {
  std::vector<std::vector<int>> records(kUsers);
  for (int i = 0; i < kUsers; ++i) {
    records[i].resize(kDomains.size());
    for (std::size_t j = 0; j < kDomains.size(); ++j) {
      records[i][j] = static_cast<int>((i * (j + 3) + i / 2) % kDomains[j]);
    }
  }
  return records;
}

/// Accumulates all records through a freshly-built aggregator of `solution`
/// and checks the result is exactly the scalar estimate built by `scalar`.
template <typename Solution, typename ScalarFn>
void CheckBitIdentical(const Solution& solution, ScalarFn scalar) {
  const auto records = TestRecords();

  Rng scalar_rng(kSeed);
  const std::vector<std::vector<double>> expected =
      scalar(solution, records, scalar_rng);

  Rng fused_rng(kSeed);
  typename Solution::StreamAggregator agg(solution);
  for (const auto& record : records) agg.AccumulateRecord(record, fused_rng);
  EXPECT_EQ(agg.Estimate(), expected);
  EXPECT_EQ(agg.n(), kUsers);
  // Both paths must consume the generator identically.
  EXPECT_EQ(scalar_rng(), fused_rng());

  // Merge of 3 uneven shards over the same stream equals the whole.
  Rng shard_rng(kSeed);
  typename Solution::StreamAggregator merged(solution);
  const std::size_t cuts[] = {0, 123, 130, records.size()};
  for (int s = 0; s + 1 < 4; ++s) {
    typename Solution::StreamAggregator part(solution);
    for (std::size_t u = cuts[s]; u < cuts[s + 1]; ++u) {
      part.AccumulateRecord(records[u], shard_rng);
    }
    merged.Merge(part);
  }
  EXPECT_EQ(merged.Estimate(), expected);
}

TEST(SplBatchTest, StreamAggregatorMatchesScalarBitwise) {
  for (fo::Protocol protocol : fo::AllProtocols()) {
    SCOPED_TRACE(fo::ProtocolName(protocol));
    Spl spl(protocol, kDomains, 2.0);
    CheckBitIdentical(spl, [](const Spl& s, const auto& records, Rng& rng) {
      std::vector<std::vector<fo::Report>> reports;
      reports.reserve(records.size());
      for (const auto& record : records) {
        reports.push_back(s.RandomizeUser(record, rng));
      }
      return s.Estimate(reports);
    });
  }
}

TEST(SmpBatchTest, StreamAggregatorMatchesScalarBitwise) {
  for (fo::Protocol protocol : fo::AllProtocols()) {
    SCOPED_TRACE(fo::ProtocolName(protocol));
    Smp smp(protocol, kDomains, 1.0);
    CheckBitIdentical(smp, [](const Smp& s, const auto& records, Rng& rng) {
      std::vector<SmpReport> reports;
      reports.reserve(records.size());
      for (const auto& record : records) {
        reports.push_back(s.RandomizeUser(record, rng));
      }
      return s.Estimate(reports);
    });
  }
}

TEST(RsFdBatchTest, StreamAggregatorMatchesScalarBitwise) {
  for (RsFdVariant variant :
       {RsFdVariant::kGrr, RsFdVariant::kSueZ, RsFdVariant::kSueR,
        RsFdVariant::kOueZ, RsFdVariant::kOueR}) {
    SCOPED_TRACE(RsFdVariantName(variant));
    RsFd rsfd(variant, kDomains, 1.0);
    CheckBitIdentical(rsfd, [](const RsFd& s, const auto& records, Rng& rng) {
      std::vector<MultidimReport> reports;
      reports.reserve(records.size());
      for (const auto& record : records) {
        reports.push_back(s.RandomizeUser(record, rng));
      }
      return s.Estimate(reports);
    });
  }
}

TEST(RsRfdBatchTest, StreamAggregatorMatchesScalarBitwise) {
  std::vector<std::vector<double>> priors;
  for (int kj : kDomains) priors.push_back(ZipfDistribution(kj, 1.2));
  for (RsRfdVariant variant :
       {RsRfdVariant::kGrr, RsRfdVariant::kSueR, RsRfdVariant::kOueR}) {
    SCOPED_TRACE(RsRfdVariantName(variant));
    RsRfd rsrfd(variant, kDomains, 1.0, priors);
    CheckBitIdentical(rsrfd,
                      [](const RsRfd& s, const auto& records, Rng& rng) {
                        std::vector<MultidimReport> reports;
                        reports.reserve(records.size());
                        for (const auto& record : records) {
                          reports.push_back(s.RandomizeUser(record, rng));
                        }
                        return s.Estimate(reports);
                      });
  }
}

TEST(RsFdBatchTest, EstimateFromSupportCountsMatchesEstimate) {
  RsFd rsfd(RsFdVariant::kOueR, kDomains, 1.0);
  Rng rng(3);
  std::vector<MultidimReport> reports;
  for (const auto& record : TestRecords()) {
    reports.push_back(rsfd.RandomizeUser(record, rng));
  }
  EXPECT_EQ(rsfd.Estimate(reports),
            rsfd.EstimateFromSupportCounts(
                rsfd.SupportCounts(reports),
                static_cast<long long>(reports.size())));
}

}  // namespace
}  // namespace ldpr::multidim
