// Tuple-level LDP characterization of the multidimensional clients. The
// paper's amplification argument (Section 2.3.2; parallel composition +
// amplification by sampling [31]) gives RS+FD eps-LDP *per attribute*:
// for two records that differ in ONE attribute, the whole output tuple's
// likelihood ratio is bounded by e^eps even though the sampled attribute's
// randomizer runs at the amplified eps' > eps (the 1/d sampling mixture
// plus value-independent fake data absorbs the difference). For records
// that differ in SEVERAL attributes the guarantee degrades: with all d
// coordinates changed the ratio provably reaches e^eps' (both branches of
// the sampling mixture shift together; e.g. d = 2, k = [2,2]:
// Pr[(0,0)|(0,0)] = p'/2 versus Pr[(0,0)|(1,1)] = q'/2). This suite pins
// down both sides empirically on tiny domains for RS+FD (GRR and OUE-z),
// RS+RFD with skewed priors (fake data is value-independent, so priors
// must not change any ratio), and the two adaptive clients — documenting
// precisely what "RS+FD satisfies eps-LDP" means. A negative control
// confirms the harness detects violations: pinning the sampled attribute
// (disclosing it, SMP-style) breaks the single-attribute eps bound.

#include <cmath>
#include <map>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "multidim/adaptive.h"
#include "multidim/rsfd.h"
#include "multidim/rsrfd.h"
#include "multidim/rsrfd_adaptive.h"

namespace ldpr::multidim {
namespace {

std::string TupleKey(const MultidimReport& report) {
  std::string key;
  for (int v : report.values) {
    key += std::to_string(v);
    key += '|';
  }
  for (const auto& bits : report.bits) {
    for (auto b : bits) key += static_cast<char>('0' + b);
    key += '|';
  }
  return key;
}

int HammingDistance(const std::vector<int>& a, const std::vector<int>& b) {
  int distance = 0;
  for (std::size_t i = 0; i < a.size(); ++i) distance += (a[i] != b[i]);
  return distance;
}

/// All records over the given tiny domains.
std::vector<std::vector<int>> AllRecords(const std::vector<int>& k) {
  std::vector<std::vector<int>> records = {{}};
  for (int kj : k) {
    std::vector<std::vector<int>> next;
    for (const auto& prefix : records) {
      for (int v = 0; v < kj; ++v) {
        auto record = prefix;
        record.push_back(v);
        next.push_back(std::move(record));
      }
    }
    records = std::move(next);
  }
  return records;
}

/// Max over output tuples and record pairs at the given Hamming distance of
/// Pr[y|r1]/Pr[y|r2], estimated with `trials` samples per record. Outputs
/// with probability below `min_mass` under either record are skipped
/// (unreliable ratios). `record_distance` <= 0 means any pair.
template <typename Client>
double MaxLikelihoodRatio(const Client& client, const std::vector<int>& k,
                          int trials, double min_mass, std::uint64_t seed,
                          int record_distance = 0) {
  const auto records = AllRecords(k);
  std::vector<std::map<std::string, double>> dists(records.size());
  Rng rng(seed);
  for (std::size_t r = 0; r < records.size(); ++r) {
    for (int t = 0; t < trials; ++t) {
      dists[r][TupleKey(client.RandomizeUser(records[r], rng))] +=
          1.0 / trials;
    }
  }
  double max_ratio = 0.0;
  for (std::size_t a = 0; a < records.size(); ++a) {
    for (std::size_t b = 0; b < records.size(); ++b) {
      if (a == b) continue;
      if (record_distance > 0 &&
          HammingDistance(records[a], records[b]) != record_distance) {
        continue;
      }
      for (const auto& [key, pa] : dists[a]) {
        if (pa < min_mass) continue;
        auto it = dists[b].find(key);
        const double pb = (it == dists[b].end()) ? 0.0 : it->second;
        if (pb < min_mass) continue;
        max_ratio = std::max(max_ratio, pa / pb);
      }
    }
  }
  return max_ratio;
}

constexpr int kTrials = 250000;
constexpr double kMinMass = 0.01;
constexpr double kSlack = 1.12;  // Monte-Carlo tolerance on the ratio

TEST(MultidimLdpBoundTest, RsFdGrrSingleAttributeChangeIsEpsLdp) {
  const double eps = 1.0;
  RsFd client(RsFdVariant::kGrr, {2, 2}, eps);
  const double ratio = MaxLikelihoodRatio(client, {2, 2}, kTrials, kMinMass,
                                          11, /*record_distance=*/1);
  EXPECT_LE(ratio, std::exp(eps) * kSlack);
  // And the bound is *tight-ish*: far above e^eps/2, i.e. the amplified
  // randomizer really is spending more than eps on the sampled attribute.
  EXPECT_GT(ratio, std::exp(eps) * 0.75);
}

TEST(MultidimLdpBoundTest, RsFdFullRecordChangeReachesAmplifiedBudget) {
  // Records differing in every attribute: both branches of the sampling
  // mixture shift, and the tuple ratio climbs to e^{eps'} — the guarantee
  // is per-attribute, not per-record.
  const double eps = 1.0;
  RsFd client(RsFdVariant::kGrr, {2, 2}, eps);
  const double ratio = MaxLikelihoodRatio(client, {2, 2}, kTrials, kMinMass,
                                          17, /*record_distance=*/2);
  EXPECT_GT(ratio, std::exp(eps) * 1.3);  // clearly above e^eps
  EXPECT_LE(ratio, std::exp(client.amplified_epsilon()) * kSlack);
  EXPECT_GT(ratio, std::exp(client.amplified_epsilon()) * 0.8);  // and tight
}

TEST(MultidimLdpBoundTest, RsFdOueZSingleAttributeChangeIsEpsLdp) {
  const double eps = 1.0;
  RsFd client(RsFdVariant::kOueZ, {2, 2}, eps);
  EXPECT_LE(MaxLikelihoodRatio(client, {2, 2}, kTrials, kMinMass, 12,
                               /*record_distance=*/1),
            std::exp(eps) * kSlack);
}

TEST(MultidimLdpBoundTest, RsRfdUniformPriorsKeepTheEpsBound) {
  // With uniform priors RS+RFD reduces to RS+FD, so the exact e^eps
  // branch cancellation survives.
  const double eps = 1.0;
  RsRfd client(RsRfdVariant::kGrr, {2, 2}, eps,
               {{0.5, 0.5}, {0.5, 0.5}});
  EXPECT_LE(MaxLikelihoodRatio(client, {2, 2}, kTrials, kMinMass, 13,
                               /*record_distance=*/1),
            std::exp(eps) * kSlack);
}

TEST(MultidimLdpBoundTest, RsRfdSkewedPriorsDegradeTheTupleBound) {
  // Characterization finding of this reproduction: RS+FD's tuple-level
  // e^eps bound comes from an exact cancellation — every sampling branch
  // carries the same uniform fake factor prod_i 1/k_i, so the likelihood
  // ratio reduces to (p + S)/(q + S) = e^eps at the design point. Skewed
  // priors break that cancellation (branches are weighted by different
  // prod f~_i(y_i) masses), and the realized worst-case ratio for
  // single-attribute neighbours exceeds e^eps, approaching e^{eps'} as
  // prior masses approach 0. Closed-form check for d = 2, k = [2,2],
  // priors (0.9,0.1)/(0.2,0.8): binding pair ratio
  // (q*0.2 + 0.9*p)/(q*0.2 + 0.9*q) ~ 3.8 > e^1 ~ 2.72 (eps' = 1.49).
  // The paper's Section 5 privacy analysis is exact for uniform fakes; for
  // realistic fakes it is an approximation whose error grows with skew.
  const double eps = 1.0;
  RsRfd client(RsRfdVariant::kGrr, {2, 2}, eps,
               {{0.9, 0.1}, {0.2, 0.8}});
  const double ratio = MaxLikelihoodRatio(client, {2, 2}, kTrials, kMinMass,
                                          13, /*record_distance=*/1);
  EXPECT_GT(ratio, std::exp(eps) * 1.2);  // clearly above e^eps
  EXPECT_LE(ratio, std::exp(client.amplified_epsilon()) * kSlack);
}

TEST(MultidimLdpBoundTest, AdaptiveClientsStayWithinAmplifiedBudget) {
  // Mixing encodings per attribute (ADP) also breaks the equal-fake-factor
  // cancellation: the GRR-attribute branch and the OUE-attribute branch
  // weight outputs by structurally different fake distributions. The tuple
  // guarantee for single-attribute neighbours therefore sits strictly
  // between e^eps and e^{eps'} — the price of per-attribute adaptivity,
  // mirroring the skewed-prior effect above.
  const double eps = 1.0;
  // k = {2, 8} makes the ADP rules mix GRR and OUE choices at d = 2.
  RsFdAdaptive fd({2, 8}, eps);
  const double fd_ratio = MaxLikelihoodRatio(fd, {2, 8}, kTrials, kMinMass,
                                             14, /*record_distance=*/1);
  EXPECT_LE(fd_ratio, std::exp(fd.amplified_epsilon()) * kSlack);
  RsRfdAdaptive rfd({2, 8}, eps,
                    {{0.8, 0.2}, {0.3, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1, 0.1}});
  const double rfd_ratio = MaxLikelihoodRatio(rfd, {2, 8}, kTrials, kMinMass,
                                              15, /*record_distance=*/1);
  EXPECT_LE(rfd_ratio, std::exp(rfd.amplified_epsilon()) * kSlack);
}

TEST(MultidimLdpBoundTest, NegativeControlDetectsViolation) {
  // Disclose the sampled attribute (SMP-style) while still randomizing at
  // the amplified budget: the per-output ratio then reaches e^{eps'} > e^eps
  // and the harness must see it. We emulate by running RS+FD with the
  // sampled attribute pinned (the caller-chosen-attribute API), which
  // removes the 1/d sampling mixture the amplification relies on.
  const double eps = 1.0;
  RsFd client(RsFdVariant::kGrr, {2, 2}, eps);
  struct PinnedClient {
    const RsFd& inner;
    MultidimReport RandomizeUser(const std::vector<int>& record,
                                 Rng& rng) const {
      return inner.RandomizeUserWithAttribute(record, 0, rng);
    }
  } pinned{client};
  const double ratio = MaxLikelihoodRatio(pinned, {2, 2}, kTrials, kMinMass,
                                          16, /*record_distance=*/1);
  EXPECT_GT(ratio, std::exp(eps) * 1.3);  // clearly above e^eps
  EXPECT_LE(ratio, std::exp(client.amplified_epsilon()) * kSlack);
}

}  // namespace
}  // namespace ldpr::multidim
