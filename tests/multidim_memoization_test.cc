#include "multidim/memoization.h"

#include <gtest/gtest.h>

#include "core/check.h"

namespace ldpr::multidim {
namespace {

bool SameReport(const fo::Report& a, const fo::Report& b) {
  return a.value == b.value && a.hash_seed == b.hash_seed &&
         a.subset == b.subset && a.bits == b.bits;
}

TEST(MemoizationTest, RepeatedAttributeReturnsCachedReport) {
  Smp smp(fo::Protocol::kGrr, {8, 5}, 1.0);
  MemoizedSmpClient client(smp);
  Rng rng(1);
  const std::vector<int> record{3, 2};

  SmpReport first = client.Report(record, 0, rng);
  EXPECT_EQ(client.fresh_reports(), 1);
  for (int t = 0; t < 50; ++t) {
    SmpReport repeat = client.Report(record, 0, rng);
    EXPECT_TRUE(SameReport(first.report, repeat.report));
  }
  EXPECT_EQ(client.fresh_reports(), 1);
}

TEST(MemoizationTest, DistinctAttributesRandomizeSeparately) {
  Smp smp(fo::Protocol::kOue, {8, 5, 3}, 1.0);
  MemoizedSmpClient client(smp);
  Rng rng(2);
  const std::vector<int> record{3, 2, 1};
  client.Report(record, 0, rng);
  client.Report(record, 2, rng);
  EXPECT_EQ(client.fresh_reports(), 2);
  EXPECT_TRUE(client.IsMemoized(0));
  EXPECT_FALSE(client.IsMemoized(1));
  EXPECT_TRUE(client.IsMemoized(2));
}

TEST(MemoizationTest, InvalidateForcesFreshRandomization) {
  Smp smp(fo::Protocol::kSue, {16, 4}, 1.0);
  MemoizedSmpClient client(smp);
  Rng rng(3);
  const std::vector<int> record{7, 0};
  SmpReport first = client.Report(record, 0, rng);
  client.Invalidate(0);
  EXPECT_FALSE(client.IsMemoized(0));
  SmpReport second = client.Report(record, 0, rng);
  EXPECT_EQ(client.fresh_reports(), 2);
  // SUE over k = 16 bits: fresh randomization collides with negligible
  // probability; a collision here would indicate the cache was not dropped.
  EXPECT_FALSE(SameReport(first.report, second.report));
}

TEST(MemoizationTest, RandomAttributeUsesWithReplacementSampling) {
  Smp smp(fo::Protocol::kGrr, {4, 4, 4, 4}, 1.0);
  MemoizedSmpClient client(smp);
  Rng rng(4);
  const std::vector<int> record{0, 1, 2, 3};
  for (int t = 0; t < 100; ++t) client.ReportRandomAttribute(record, rng);
  // 100 draws over 4 attributes: every attribute memoized, but only 4 fresh
  // randomizations happened — the memoization bound on privacy loss.
  EXPECT_EQ(client.fresh_reports(), 4);
  for (int a = 0; a < 4; ++a) EXPECT_TRUE(client.IsMemoized(a));
}

TEST(MemoizationTest, CachedReportsRemainValidForEstimation) {
  // Server-side estimates over memoized reports stay unbiased: repeated
  // reports are just the same eps-LDP draw, so using each user's (single)
  // latest report reproduces plain SMP.
  const std::vector<int> k{6, 4};
  Smp smp(fo::Protocol::kGrr, k, 4.0);
  Rng rng(5);
  std::vector<SmpReport> reports;
  for (int u = 0; u < 20000; ++u) {
    MemoizedSmpClient client(smp);
    std::vector<int> record{static_cast<int>(rng.UniformInt(6)), 1};
    // The user reports the same attribute across three surveys.
    client.Report(record, 0, rng);
    client.Report(record, 0, rng);
    reports.push_back(client.Report(record, 0, rng));
  }
  auto est = smp.Estimate(reports);
  for (int v = 0; v < 6; ++v) {
    EXPECT_NEAR(est[0][v], 1.0 / 6.0, 0.03);
  }
}

TEST(MemoizationTest, Validation) {
  Smp smp(fo::Protocol::kGrr, {4, 4}, 1.0);
  MemoizedSmpClient client(smp);
  Rng rng(6);
  EXPECT_THROW(client.Report({0, 0}, 2, rng), InvalidArgumentError);
  EXPECT_THROW(client.IsMemoized(-1), InvalidArgumentError);
  EXPECT_THROW(client.Invalidate(5), InvalidArgumentError);
}

}  // namespace
}  // namespace ldpr::multidim
