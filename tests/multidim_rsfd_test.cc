#include "multidim/rsfd.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/check.h"
#include "core/metrics.h"
#include "core/sampling.h"
#include "data/synthetic.h"
#include "multidim/amplification.h"
#include "multidim/variance.h"

namespace ldpr::multidim {
namespace {

std::vector<RsFdVariant> AllVariants() {
  return {RsFdVariant::kGrr, RsFdVariant::kSueZ, RsFdVariant::kSueR,
          RsFdVariant::kOueZ, RsFdVariant::kOueR};
}

TEST(RsFdTest, VariantNamesAndKindPredicates) {
  EXPECT_STREQ(RsFdVariantName(RsFdVariant::kGrr), "RS+FD[GRR]");
  EXPECT_STREQ(RsFdVariantName(RsFdVariant::kSueZ), "RS+FD[SUE-z]");
  EXPECT_STREQ(RsFdVariantName(RsFdVariant::kOueR), "RS+FD[OUE-r]");
  EXPECT_FALSE(IsUeVariant(RsFdVariant::kGrr));
  EXPECT_TRUE(IsUeVariant(RsFdVariant::kSueZ));
  EXPECT_TRUE(IsZeroFakeVariant(RsFdVariant::kOueZ));
  EXPECT_FALSE(IsZeroFakeVariant(RsFdVariant::kOueR));
}

TEST(RsFdTest, UsesAmplifiedBudget) {
  RsFd rsfd(RsFdVariant::kGrr, {4, 5, 6}, 1.0);
  EXPECT_NEAR(rsfd.amplified_epsilon(), AmplifiedEpsilon(1.0, 3), 1e-12);
  EXPECT_GT(rsfd.amplified_epsilon(), rsfd.epsilon());
  // GRR probabilities are per-attribute (depend on k_j).
  EXPECT_GT(rsfd.p(0), rsfd.p(2));
}

TEST(RsFdTest, Validation) {
  EXPECT_THROW(RsFd(RsFdVariant::kGrr, {4}, 1.0), InvalidArgumentError);
  EXPECT_THROW(RsFd(RsFdVariant::kGrr, {4, 1}, 1.0), InvalidArgumentError);
  EXPECT_THROW(RsFd(RsFdVariant::kGrr, {4, 5}, 0.0), InvalidArgumentError);
  RsFd rsfd(RsFdVariant::kGrr, {4, 5}, 1.0);
  Rng rng(1);
  EXPECT_THROW(rsfd.RandomizeUser({1}, rng), InvalidArgumentError);
  EXPECT_THROW(rsfd.RandomizeUserWithAttribute({1, 2}, 2, rng),
               InvalidArgumentError);
  EXPECT_THROW(rsfd.Estimate({}), InvalidArgumentError);
}

TEST(RsFdTest, ReportShapesMatchVariant) {
  Rng rng(2);
  RsFd grr(RsFdVariant::kGrr, {4, 5}, 1.0);
  MultidimReport r1 = grr.RandomizeUser({1, 2}, rng);
  EXPECT_EQ(r1.values.size(), 2u);
  EXPECT_TRUE(r1.bits.empty());
  EXPECT_GE(r1.sampled_attribute, 0);
  EXPECT_LT(r1.sampled_attribute, 2);

  RsFd oue(RsFdVariant::kOueZ, {4, 5}, 1.0);
  MultidimReport r2 = oue.RandomizeUser({1, 2}, rng);
  EXPECT_TRUE(r2.values.empty());
  ASSERT_EQ(r2.bits.size(), 2u);
  EXPECT_EQ(r2.bits[0].size(), 4u);
  EXPECT_EQ(r2.bits[1].size(), 5u);
}

TEST(RsFdTest, SampledAttributeIsUniform) {
  RsFd rsfd(RsFdVariant::kGrr, {3, 3, 3, 3}, 1.0);
  Rng rng(3);
  std::vector<int> counts(4, 0);
  for (int t = 0; t < 8000; ++t) {
    ++counts[rsfd.RandomizeUser({0, 1, 2, 0}, rng).sampled_attribute];
  }
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / 8000.0, 0.25, 0.03);
  }
}

TEST(RsFdTest, ZeroFakesProduceSparserBitsThanRandomFakes) {
  // The root cause of the RS+FD[UE-z] vulnerability: fake columns have only
  // q-level bit density while the sampled column has an extra p-bit.
  Rng rng(4);
  const std::vector<int> k{20, 20};
  RsFd z(RsFdVariant::kOueZ, k, 1.0);
  RsFd r(RsFdVariant::kOueR, k, 1.0);
  long long z_fake_bits = 0, r_fake_bits = 0;
  const int trials = 4000;
  for (int t = 0; t < trials; ++t) {
    MultidimReport rz = z.RandomizeUserWithAttribute({3, 7}, 0, rng);
    MultidimReport rr = r.RandomizeUserWithAttribute({3, 7}, 0, rng);
    for (int v = 0; v < 20; ++v) {
      z_fake_bits += rz.bits[1][v];
      r_fake_bits += rr.bits[1][v];
    }
  }
  EXPECT_LT(z_fake_bits, r_fake_bits);
}

class RsFdEstimatorTest : public ::testing::TestWithParam<RsFdVariant> {};

TEST_P(RsFdEstimatorTest, UnbiasedOnSkewedData) {
  const RsFdVariant variant = GetParam();
  // Skewed multidimensional population.
  const std::vector<int> k{6, 4, 9};
  const int n = 120000;
  Rng rng(100 + static_cast<int>(variant));
  std::vector<CategoricalSampler> samplers;
  for (int kj : k) samplers.emplace_back(ZipfDistribution(kj, 1.3));

  std::vector<std::vector<int>> records(n, std::vector<int>(3));
  std::vector<std::vector<long long>> counts(3);
  for (int j = 0; j < 3; ++j) counts[j].assign(k[j], 0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < 3; ++j) {
      records[i][j] = samplers[j].Sample(rng);
      ++counts[j][records[i][j]];
    }
  }
  std::vector<std::vector<double>> truth(3);
  for (int j = 0; j < 3; ++j) {
    truth[j].resize(k[j]);
    for (int v = 0; v < k[j]; ++v) {
      truth[j][v] = static_cast<double>(counts[j][v]) / n;
    }
  }

  RsFd rsfd(variant, k, 1.0);
  std::vector<MultidimReport> reports;
  reports.reserve(n);
  for (int i = 0; i < n; ++i) {
    reports.push_back(rsfd.RandomizeUser(records[i], rng));
  }
  auto est = rsfd.Estimate(reports);

  for (int j = 0; j < 3; ++j) {
    for (int v = 0; v < k[j]; ++v) {
      const double sd = std::sqrt(
          RsFdVariance(variant, k[j], 3, 1.0, n, truth[j][v]));
      EXPECT_NEAR(est[j][v], truth[j][v], 5.0 * sd + 1e-6)
          << RsFdVariantName(variant) << " j=" << j << " v=" << v;
    }
  }
}

TEST_P(RsFdEstimatorTest, VarianceFormulaMatchesEmpirical) {
  const RsFdVariant variant = GetParam();
  const std::vector<int> k{5, 7};
  const int n = 4000;
  const int runs = 250;
  RsFd rsfd(variant, k, 1.0);
  Rng rng(200 + static_cast<int>(variant));

  // All users hold value 0 on both attributes; measure fhat_0(1) (f = 0).
  std::vector<int> record{0, 0};
  std::vector<double> estimates(runs);
  for (int r = 0; r < runs; ++r) {
    std::vector<MultidimReport> reports;
    reports.reserve(n);
    for (int i = 0; i < n; ++i) {
      reports.push_back(rsfd.RandomizeUser(record, rng));
    }
    estimates[r] = rsfd.Estimate(reports)[0][1];
  }
  const double mean = Mean(estimates);
  double var = 0.0;
  for (double e : estimates) var += (e - mean) * (e - mean);
  var /= (runs - 1);
  const double predicted = RsFdVariance(variant, k[0], 2, 1.0, n, 0.0);
  EXPECT_NEAR(var, predicted, 0.5 * predicted) << RsFdVariantName(variant);
  EXPECT_NEAR(mean, 0.0, 5.0 * std::sqrt(predicted / runs));
}

INSTANTIATE_TEST_SUITE_P(AllVariants, RsFdEstimatorTest,
                         ::testing::ValuesIn(AllVariants()),
                         [](const ::testing::TestParamInfo<RsFdVariant>& info) {
                           switch (info.param) {
                             case RsFdVariant::kGrr:
                               return "GRR";
                             case RsFdVariant::kSueZ:
                               return "SUEz";
                             case RsFdVariant::kSueR:
                               return "SUEr";
                             case RsFdVariant::kOueZ:
                               return "OUEz";
                             case RsFdVariant::kOueR:
                               return "OUEr";
                           }
                           return "unknown";
                         });

TEST(RsFdVarianceTest, ApproxMseAvgAveragesAttributes) {
  const std::vector<int> k{4, 16};
  const double direct =
      (RsFdVariance(RsFdVariant::kGrr, 4, 2, 1.0, 1000, 0.0) +
       RsFdVariance(RsFdVariant::kGrr, 16, 2, 1.0, 1000, 0.0)) /
      2.0;
  EXPECT_NEAR(RsFdApproxMseAvg(RsFdVariant::kGrr, k, 1.0, 1000), direct,
              1e-12);
}

TEST(RsFdVarianceTest, DecreasesWithN) {
  const double v1 = RsFdVariance(RsFdVariant::kOueR, 8, 3, 1.0, 1000, 0.0);
  const double v2 = RsFdVariance(RsFdVariant::kOueR, 8, 3, 1.0, 4000, 0.0);
  EXPECT_NEAR(v1 / v2, 4.0, 1e-9);
}

TEST(RsFdVarianceTest, Validation) {
  EXPECT_THROW(RsFdVariance(RsFdVariant::kGrr, 1, 3, 1.0, 100, 0.0),
               InvalidArgumentError);
  EXPECT_THROW(RsFdVariance(RsFdVariant::kGrr, 4, 1, 1.0, 100, 0.0),
               InvalidArgumentError);
  EXPECT_THROW(RsFdVariance(RsFdVariant::kGrr, 4, 3, 0.0, 100, 0.0),
               InvalidArgumentError);
}

}  // namespace
}  // namespace ldpr::multidim
