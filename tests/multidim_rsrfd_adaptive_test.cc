// Tests for RS+RFD[ADP] (multidim/rsrfd_adaptive): construction and
// validation, the prior-dependent choice rule against the fixed protocols'
// closed-form variances, estimator unbiasedness on planted distributions,
// reduction to RS+FD[ADP]-style behaviour under uniform priors, and the
// attack-surface claim (the NK attacker stays near baseline, unlike
// RS+FD[ADP]).

#include <cmath>
#include <tuple>
#include <vector>

#include <gtest/gtest.h>

#include "attack/aif.h"
#include "core/check.h"
#include "data/priors.h"
#include "data/synthetic.h"
#include "multidim/adaptive.h"
#include "multidim/rsrfd_adaptive.h"

namespace ldpr::multidim {
namespace {

std::vector<std::vector<double>> UniformPriors(const std::vector<int>& k) {
  std::vector<std::vector<double>> priors;
  for (int kj : k) priors.emplace_back(kj, 1.0 / kj);
  return priors;
}

TEST(RsRfdAdaptiveTest, ValidatesConstruction) {
  EXPECT_THROW(RsRfdAdaptive({8}, 1.0, UniformPriors({8})),
               InvalidArgumentError);
  EXPECT_THROW(RsRfdAdaptive({8, 8}, 0.0, UniformPriors({8, 8})),
               InvalidArgumentError);
  EXPECT_THROW(RsRfdAdaptive({8, 8}, 1.0, UniformPriors({8})),
               InvalidArgumentError);
  EXPECT_THROW(RsRfdAdaptive({8, 8}, 1.0, {{0.5, 0.5}, {1.0}}),
               InvalidArgumentError);
  std::vector<std::vector<double>> negative = UniformPriors({8, 8});
  negative[0][0] = -1.0;
  EXPECT_THROW(RsRfdAdaptive({8, 8}, 1.0, negative), InvalidArgumentError);
}

TEST(RsRfdAdaptiveTest, ChoiceMinimizesPerAttributeMeanVariance) {
  const std::vector<int> k = {40, 4, 12};
  Rng rng(3);
  data::Dataset ds = data::AdultLike(9, 0.02).Project({0, 1, 2});
  auto priors = UniformPriors(k);
  RsRfdAdaptive adp(k, 1.0, priors);
  RsRfd grr(RsRfdVariant::kGrr, k, 1.0, priors);
  RsRfd ouer(RsRfdVariant::kOueR, k, 1.0, priors);
  for (int j = 0; j < 3; ++j) {
    double grr_var = 0.0, ouer_var = 0.0;
    for (int v = 0; v < k[j]; ++v) {
      grr_var += grr.EstimatorVariance(j, v, 1, 0.0);
      ouer_var += ouer.EstimatorVariance(j, v, 1, 0.0);
    }
    const RsRfdVariant expected =
        grr_var <= ouer_var ? RsRfdVariant::kGrr : RsRfdVariant::kOueR;
    EXPECT_EQ(adp.choice(j), expected) << "attr " << j;
  }
}

TEST(RsRfdAdaptiveTest, MixedPayloadShapes) {
  // eps = 1, d = 2, uniform priors: k = 40 -> OUE-r, k = 3 -> GRR (same
  // regions as RS+FD[ADP] under uniform priors).
  RsRfdAdaptive adp({40, 3}, 1.0, UniformPriors({40, 3}));
  ASSERT_EQ(adp.choice(0), RsRfdVariant::kOueR);
  ASSERT_EQ(adp.choice(1), RsRfdVariant::kGrr);
  Rng rng(5);
  MultidimReport r = adp.RandomizeUserWithAttribute({10, 2}, 0, rng);
  EXPECT_EQ(static_cast<int>(r.bits[0].size()), 40);
  EXPECT_TRUE(r.bits[1].empty());
  EXPECT_GE(r.values[1], 0);
  EXPECT_LT(r.values[1], 3);
  EXPECT_EQ(r.values[0], -1);
}

// Unbiasedness sweep: planted two-value distributions recovered within
// Monte-Carlo tolerance for skewed (correct) priors and for wrong priors
// alike (the estimators are unbiased for any fixed prior).
class RsRfdAdaptiveUnbiasednessTest
    : public ::testing::TestWithParam<std::tuple<double, bool>> {};

TEST_P(RsRfdAdaptiveUnbiasednessTest, RecoversPlantedDistribution) {
  const auto [eps, correct_priors] = GetParam();
  const std::vector<int> k = {40, 4};
  std::vector<std::vector<double>> priors;
  if (correct_priors) {
    priors = {std::vector<double>(40, 0.0), std::vector<double>(4, 0.0)};
    priors[0][0] = 0.75;
    priors[0][1] = 0.25;
    priors[1][0] = 0.75;
    priors[1][1] = 0.25;
  } else {
    priors = UniformPriors(k);  // wrong: true data is skewed
  }
  RsRfdAdaptive adp(k, eps, priors);
  Rng rng(77);
  const int n = 80000;
  std::vector<MultidimReport> reports;
  reports.reserve(n);
  for (int i = 0; i < n; ++i) {
    std::vector<int> record(2);
    for (int j = 0; j < 2; ++j) record[j] = rng.Bernoulli(0.25) ? 1 : 0;
    reports.push_back(adp.RandomizeUser(record, rng));
  }
  auto est = adp.Estimate(reports);
  for (int j = 0; j < 2; ++j) {
    EXPECT_NEAR(est[j][0], 0.75, 0.06) << "attr " << j;
    EXPECT_NEAR(est[j][1], 0.25, 0.06) << "attr " << j;
  }
}

INSTANTIATE_TEST_SUITE_P(EpsPriors, RsRfdAdaptiveUnbiasednessTest,
                         ::testing::Combine(::testing::Values(1.0, 4.0),
                                            ::testing::Bool()));

TEST(RsRfdAdaptiveTest, UniformPriorsMatchRsFdEstimatesInExpectation) {
  // With uniform priors RS+RFD reduces to RS+FD; the adaptive estimators
  // must agree with the fixed RS+FD[GRR] estimator on GRR-chosen attributes
  // given identical support counts. Here both attributes choose GRR (small
  // domains, d = 2 keeps GRR competitive at eps = 1).
  const std::vector<int> k = {3, 4};
  RsRfdAdaptive adp(k, 1.0, UniformPriors(k));
  ASSERT_EQ(adp.choice(0), RsRfdVariant::kGrr);
  ASSERT_EQ(adp.choice(1), RsRfdVariant::kGrr);
  RsFd reference(RsFdVariant::kGrr, k, 1.0);
  Rng rng(11);
  std::vector<MultidimReport> reports;
  for (int i = 0; i < 5000; ++i) {
    // Build an RS+FD-shaped report and mirror it into the adaptive shape.
    MultidimReport r = reference.RandomizeUser({1, 2}, rng);
    r.bits.resize(2);  // adaptive expects bits[] sized d (empty per GRR attr)
    reports.push_back(std::move(r));
  }
  auto adaptive_est = adp.Estimate(reports);
  // Strip the bits again for the reference estimator.
  for (auto& r : reports) r.bits.clear();
  auto reference_est = reference.Estimate(reports);
  for (int j = 0; j < 2; ++j) {
    for (int v = 0; v < k[j]; ++v) {
      EXPECT_NEAR(adaptive_est[j][v], reference_est[j][v], 1e-9)
          << "attr " << j << " v " << v;
    }
  }
}

TEST(RsRfdAdaptiveTest, NkAttackSuppressedRelativeToRsFdAdp) {
  // The point of combining ADP with realistic fake data: RS+FD[ADP] leaks
  // the sampled attribute through OUE-z fakes (abl08, ~25-35% at eps = 8);
  // RS+RFD[ADP] with exact-marginal priors must stay near the 1/d baseline
  // and far below RS+FD[ADP] under the identical attack.
  data::Dataset ds = data::AcsEmploymentLike(44, 0.2);
  Rng rng(21);
  attack::AifConfig config;
  config.model = attack::AifModel::kNk;
  config.gbdt.num_rounds = 6;
  config.gbdt.max_depth = 4;

  RsRfdAdaptive rfd(ds.domain_sizes(), 8.0, ds.Marginals());
  attack::AifResult rfd_result = attack::RunAifAttack(
      ds,
      [&](const std::vector<int>& r, Rng& g) {
        return rfd.RandomizeUser(r, g);
      },
      [&](const std::vector<multidim::MultidimReport>& reps) {
        return rfd.Estimate(reps);
      },
      config, rng);

  RsFdAdaptive fd(ds.domain_sizes(), 8.0);
  attack::AifResult fd_result = attack::RunAifAttack(
      ds,
      [&](const std::vector<int>& r, Rng& g) {
        return fd.RandomizeUser(r, g);
      },
      [&](const std::vector<multidim::MultidimReport>& reps) {
        return fd.Estimate(reps);
      },
      config, rng);

  EXPECT_LT(rfd_result.aif_acc_percent, 2.0 * rfd_result.baseline_percent);
  EXPECT_LT(2.0 * rfd_result.aif_acc_percent, fd_result.aif_acc_percent);
}

}  // namespace
}  // namespace ldpr::multidim
