#include "multidim/rsrfd.h"

#include <algorithm>
#include <cmath>

#include <gtest/gtest.h>

#include "core/check.h"
#include "core/metrics.h"
#include "core/sampling.h"
#include "data/priors.h"
#include "data/synthetic.h"
#include "multidim/variance.h"

namespace ldpr::multidim {
namespace {

std::vector<std::vector<double>> UniformPriors(const std::vector<int>& k) {
  std::vector<std::vector<double>> priors;
  for (int kj : k) priors.emplace_back(kj, 1.0 / kj);
  return priors;
}

RsFdVariant MatchingRsFdVariant(RsRfdVariant v) {
  switch (v) {
    case RsRfdVariant::kGrr:
      return RsFdVariant::kGrr;
    case RsRfdVariant::kSueR:
      return RsFdVariant::kSueR;
    case RsRfdVariant::kOueR:
      return RsFdVariant::kOueR;
  }
  return RsFdVariant::kGrr;
}

std::vector<RsRfdVariant> AllVariants() {
  return {RsRfdVariant::kGrr, RsRfdVariant::kSueR, RsRfdVariant::kOueR};
}

TEST(RsRfdTest, VariantNames) {
  EXPECT_STREQ(RsRfdVariantName(RsRfdVariant::kGrr), "RS+RFD[GRR]");
  EXPECT_STREQ(RsRfdVariantName(RsRfdVariant::kSueR), "RS+RFD[SUE-r]");
  EXPECT_STREQ(RsRfdVariantName(RsRfdVariant::kOueR), "RS+RFD[OUE-r]");
}

TEST(RsRfdTest, Validation) {
  const std::vector<int> k{4, 5};
  EXPECT_THROW(RsRfd(RsRfdVariant::kGrr, {4}, 1.0, UniformPriors({4})),
               InvalidArgumentError);
  EXPECT_THROW(RsRfd(RsRfdVariant::kGrr, k, 0.0, UniformPriors(k)),
               InvalidArgumentError);
  // Wrong prior shape.
  EXPECT_THROW(RsRfd(RsRfdVariant::kGrr, k, 1.0, UniformPriors({4})),
               InvalidArgumentError);
  EXPECT_THROW(RsRfd(RsRfdVariant::kGrr, k, 1.0, UniformPriors({4, 6})),
               InvalidArgumentError);
}

TEST(RsRfdTest, PointMassPriorForcesFakeValue) {
  // With a point-mass prior on value 0, every fake (non-sampled) value must
  // be 0, regardless of the user's true record.
  const std::vector<int> k{4, 4};
  std::vector<std::vector<double>> priors{{1.0, 0.0, 0.0, 0.0},
                                          {1.0, 0.0, 0.0, 0.0}};
  RsRfd rsrfd(RsRfdVariant::kGrr, k, 1.0, priors);
  Rng rng(1);
  for (int t = 0; t < 500; ++t) {
    MultidimReport r = rsrfd.RandomizeUser({3, 3}, rng);
    const int fake_attr = 1 - r.sampled_attribute;
    EXPECT_EQ(r.values[fake_attr], 0);
  }
}

TEST(RsRfdTest, FakeValuesMatchPriorDistribution) {
  const std::vector<int> k{5, 5};
  std::vector<std::vector<double>> priors{{0.6, 0.1, 0.1, 0.1, 0.1},
                                          {0.1, 0.1, 0.1, 0.1, 0.6}};
  RsRfd rsrfd(RsRfdVariant::kGrr, k, 1.0, priors);
  Rng rng(2);
  std::vector<long long> fake_counts(5, 0);
  long long fakes = 0;
  for (int t = 0; t < 40000; ++t) {
    MultidimReport r = rsrfd.RandomizeUser({2, 2}, rng);
    if (r.sampled_attribute == 1) {
      ++fake_counts[r.values[0]];  // attribute 0 holds fake data
      ++fakes;
    }
  }
  ASSERT_GT(fakes, 10000);
  EXPECT_NEAR(static_cast<double>(fake_counts[0]) / fakes, 0.6, 0.02);
  EXPECT_NEAR(static_cast<double>(fake_counts[2]) / fakes, 0.1, 0.02);
}

class RsRfdVariantTest : public ::testing::TestWithParam<RsRfdVariant> {};

TEST_P(RsRfdVariantTest, EstimatorUnbiasedWithSkewedPriors) {
  const RsRfdVariant variant = GetParam();
  const std::vector<int> k{6, 4, 9};
  const int n = 120000;
  Rng rng(300 + static_cast<int>(variant));

  // Skewed truth and *different* skewed priors (priors need not be correct
  // for unbiasedness — the estimator subtracts whatever prior is used).
  std::vector<CategoricalSampler> samplers;
  std::vector<std::vector<double>> priors;
  for (int kj : k) {
    samplers.emplace_back(ZipfDistribution(kj, 1.3));
    auto prior = ZipfDistribution(kj, 0.7);
    std::reverse(prior.begin(), prior.end());
    priors.push_back(prior);
  }

  std::vector<std::vector<int>> records(n, std::vector<int>(3));
  std::vector<std::vector<long long>> counts(3);
  for (int j = 0; j < 3; ++j) counts[j].assign(k[j], 0);
  for (int i = 0; i < n; ++i) {
    for (int j = 0; j < 3; ++j) {
      records[i][j] = samplers[j].Sample(rng);
      ++counts[j][records[i][j]];
    }
  }

  RsRfd rsrfd(variant, k, 1.0, priors);
  std::vector<MultidimReport> reports;
  reports.reserve(n);
  for (int i = 0; i < n; ++i) {
    reports.push_back(rsrfd.RandomizeUser(records[i], rng));
  }
  auto est = rsrfd.Estimate(reports);

  for (int j = 0; j < 3; ++j) {
    for (int v = 0; v < k[j]; ++v) {
      const double truth = static_cast<double>(counts[j][v]) / n;
      const double sd =
          std::sqrt(rsrfd.EstimatorVariance(j, v, n, truth));
      EXPECT_NEAR(est[j][v], truth, 5.0 * sd + 1e-6)
          << RsRfdVariantName(variant) << " j=" << j << " v=" << v;
    }
  }
}

TEST_P(RsRfdVariantTest, UniformPriorReducesToRsFdEstimator) {
  // With uniform priors, RS+RFD is mathematically identical to RS+FD: same
  // client distribution and the estimators coincide. Feed the *same* support
  // counts through both server sides and compare.
  const RsRfdVariant variant = GetParam();
  const std::vector<int> k{5, 7};
  const double eps = 1.0;
  RsRfd rsrfd(variant, k, eps, UniformPriors(k));
  RsFd rsfd(MatchingRsFdVariant(variant), k, eps);

  Rng rng(400 + static_cast<int>(variant));
  std::vector<MultidimReport> reports;
  for (int i = 0; i < 3000; ++i) {
    reports.push_back(rsrfd.RandomizeUser({1, 2}, rng));
  }
  auto est_rfd = rsrfd.Estimate(reports);
  auto est_fd = rsfd.Estimate(reports);
  for (int j = 0; j < 2; ++j) {
    for (int v = 0; v < k[j]; ++v) {
      EXPECT_NEAR(est_rfd[j][v], est_fd[j][v], 1e-9)
          << RsRfdVariantName(variant);
    }
  }
}

TEST_P(RsRfdVariantTest, VarianceFormulaMatchesEmpirical) {
  const RsRfdVariant variant = GetParam();
  const std::vector<int> k{5, 7};
  std::vector<std::vector<double>> priors{ZipfDistribution(5, 1.0),
                                          ZipfDistribution(7, 1.0)};
  RsRfd rsrfd(variant, k, 1.0, priors);
  Rng rng(500 + static_cast<int>(variant));

  const int n = 4000;
  const int runs = 250;
  std::vector<double> estimates(runs);
  for (int r = 0; r < runs; ++r) {
    std::vector<MultidimReport> reports;
    reports.reserve(n);
    for (int i = 0; i < n; ++i) {
      reports.push_back(rsrfd.RandomizeUser({0, 0}, rng));
    }
    estimates[r] = rsrfd.Estimate(reports)[0][1];
  }
  const double mean = Mean(estimates);
  double var = 0.0;
  for (double e : estimates) var += (e - mean) * (e - mean);
  var /= (runs - 1);
  const double predicted = rsrfd.EstimatorVariance(0, 1, n, 0.0);
  EXPECT_NEAR(var, predicted, 0.5 * predicted) << RsRfdVariantName(variant);
  EXPECT_NEAR(mean, 0.0, 5.0 * std::sqrt(predicted / runs));
}

INSTANTIATE_TEST_SUITE_P(AllVariants, RsRfdVariantTest,
                         ::testing::ValuesIn(AllVariants()),
                         [](const ::testing::TestParamInfo<RsRfdVariant>& i) {
                           switch (i.param) {
                             case RsRfdVariant::kGrr:
                               return "GRR";
                             case RsRfdVariant::kSueR:
                               return "SUEr";
                             case RsRfdVariant::kOueR:
                               return "OUEr";
                           }
                           return "unknown";
                         });

TEST(RsRfdUtilityTest, CorrectPriorsBeatUniformFakes) {
  // Section 5.2.2's headline: with near-correct priors, RS+RFD's MSE_avg is
  // below RS+FD's, because fake data contributes signal.
  data::Dataset ds = data::AcsEmploymentLike(11, 0.5);
  Rng rng(12);
  auto priors = data::BuildPriors(ds, data::PriorKind::kCorrectLaplace, rng,
                                  /*total_central_eps=*/0.1,
                                  data::kAcsEmploymentN);

  RsRfd rsrfd(RsRfdVariant::kGrr, ds.domain_sizes(), std::log(2.0), priors);
  RsFd rsfd(RsFdVariant::kGrr, ds.domain_sizes(), std::log(2.0));
  auto truth = ds.Marginals();
  // The advantage is in expectation; average several collection rounds so a
  // single noisy draw cannot flip the comparison.
  double rfd_mse = 0.0, fd_mse = 0.0;
  for (int run = 0; run < 5; ++run) {
    std::vector<MultidimReport> rfd_reports, fd_reports;
    for (int i = 0; i < ds.n(); ++i) {
      rfd_reports.push_back(rsrfd.RandomizeUser(ds.Record(i), rng));
      fd_reports.push_back(rsfd.RandomizeUser(ds.Record(i), rng));
    }
    rfd_mse += MseAvg(truth, rsrfd.Estimate(rfd_reports));
    fd_mse += MseAvg(truth, rsfd.Estimate(fd_reports));
  }
  EXPECT_LT(rfd_mse, fd_mse);
}

TEST(RsRfdUtilityTest, ApproxMseAvgMatchesVarianceAverage) {
  const std::vector<int> k{4, 8};
  std::vector<std::vector<double>> priors{ZipfDistribution(4, 1.0),
                                          ZipfDistribution(8, 1.0)};
  RsRfd rsrfd(RsRfdVariant::kOueR, k, 1.0, priors);
  double manual = 0.0;
  for (int j = 0; j < 2; ++j) {
    double a = 0.0;
    for (int v = 0; v < k[j]; ++v) {
      a += rsrfd.EstimatorVariance(j, v, 1000, 0.0);
    }
    manual += a / k[j];
  }
  manual /= 2.0;
  EXPECT_NEAR(RsRfdApproxMseAvg(rsrfd, 1000), manual, 1e-12);
}

TEST(RsRfdVarianceTest, EstimatorVarianceValidation) {
  const std::vector<int> k{4, 8};
  RsRfd rsrfd(RsRfdVariant::kGrr, k, 1.0, UniformPriors(k));
  EXPECT_THROW(rsrfd.EstimatorVariance(2, 0, 100, 0.0), InvalidArgumentError);
  EXPECT_THROW(rsrfd.EstimatorVariance(0, 4, 100, 0.0), InvalidArgumentError);
  EXPECT_THROW(rsrfd.EstimatorVariance(0, 0, 0, 0.0), InvalidArgumentError);
}

}  // namespace
}  // namespace ldpr::multidim
