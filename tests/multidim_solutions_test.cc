#include <cmath>

#include <gtest/gtest.h>

#include "core/check.h"
#include "core/metrics.h"
#include "data/synthetic.h"
#include "multidim/amplification.h"
#include "multidim/smp.h"
#include "multidim/spl.h"

namespace ldpr::multidim {
namespace {

TEST(AmplificationTest, ClosedForm) {
  // eps' = ln(d(e^eps - 1) + 1).
  EXPECT_NEAR(AmplifiedEpsilon(1.0, 1), 1.0, 1e-12);
  EXPECT_NEAR(AmplifiedEpsilon(1.0, 3),
              std::log(3.0 * (std::exp(1.0) - 1.0) + 1.0), 1e-12);
  EXPECT_GT(AmplifiedEpsilon(2.0, 5), 2.0);
}

TEST(AmplificationTest, RoundTrip) {
  for (int d : {2, 5, 18}) {
    for (double eps : {0.5, 1.0, 4.0}) {
      EXPECT_NEAR(DeamplifiedEpsilon(AmplifiedEpsilon(eps, d), d), eps, 1e-9);
    }
  }
}

TEST(AmplificationTest, MonotoneInD) {
  double prev = 0.0;
  for (int d = 1; d <= 20; ++d) {
    double a = AmplifiedEpsilon(1.0, d);
    EXPECT_GT(a, prev);
    prev = a;
  }
}

TEST(AmplificationTest, Validation) {
  EXPECT_THROW(AmplifiedEpsilon(0.0, 3), InvalidArgumentError);
  EXPECT_THROW(AmplifiedEpsilon(1.0, 0), InvalidArgumentError);
  EXPECT_THROW(DeamplifiedEpsilon(-1.0, 3), InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// SMP
// ---------------------------------------------------------------------------

TEST(SmpTest, ReportsDiscloseSampledAttribute) {
  Smp smp(fo::Protocol::kGrr, {4, 6, 3}, 1.0);
  Rng rng(1);
  std::vector<int> attr_counts(3, 0);
  for (int t = 0; t < 9000; ++t) {
    SmpReport r = smp.RandomizeUser({1, 2, 0}, rng);
    ASSERT_GE(r.attribute, 0);
    ASSERT_LT(r.attribute, 3);
    ++attr_counts[r.attribute];
  }
  for (int c : attr_counts) {
    EXPECT_NEAR(static_cast<double>(c) / 9000.0, 1.0 / 3.0, 0.03);
  }
}

TEST(SmpTest, EstimatesTrackTruth) {
  data::Dataset ds = data::NurseryLike(3, 0.5);
  Smp smp(fo::Protocol::kGrr, ds.domain_sizes(), 4.0);
  Rng rng(2);
  std::vector<SmpReport> reports;
  reports.reserve(ds.n());
  for (int i = 0; i < ds.n(); ++i) {
    reports.push_back(smp.RandomizeUser(ds.Record(i), rng));
  }
  auto est = smp.Estimate(reports);
  auto truth = ds.Marginals();
  EXPECT_LT(MseAvg(truth, est), 1e-3);
}

TEST(SmpTest, ExplicitAttributeSelection) {
  Smp smp(fo::Protocol::kGrr, {4, 6}, 10.0);
  Rng rng(3);
  SmpReport r = smp.RandomizeUserAttribute({2, 5}, 1, rng);
  EXPECT_EQ(r.attribute, 1);
  EXPECT_EQ(r.report.value, 5);  // eps = 10: essentially no perturbation
  EXPECT_THROW(smp.RandomizeUserAttribute({2, 5}, 2, rng),
               InvalidArgumentError);
}

TEST(SmpTest, UnsampledAttributeFallsBackToUniform) {
  Smp smp(fo::Protocol::kGrr, {4, 6}, 1.0);
  Rng rng(4);
  std::vector<SmpReport> reports;
  for (int t = 0; t < 100; ++t) {
    reports.push_back(smp.RandomizeUserAttribute({1, 2}, 0, rng));
  }
  auto est = smp.Estimate(reports);
  for (double f : est[1]) EXPECT_DOUBLE_EQ(f, 1.0 / 6.0);
}

TEST(SmpTest, Validation) {
  EXPECT_THROW(Smp(fo::Protocol::kGrr, {4}, 1.0), InvalidArgumentError);
  Smp smp(fo::Protocol::kGrr, {4, 6}, 1.0);
  Rng rng(5);
  EXPECT_THROW(smp.RandomizeUser({1}, rng), InvalidArgumentError);
  EXPECT_THROW(smp.Estimate({}), InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// SPL
// ---------------------------------------------------------------------------

TEST(SplTest, SplitsBudget) {
  Spl spl(fo::Protocol::kGrr, {4, 6, 3, 2}, 2.0);
  EXPECT_DOUBLE_EQ(spl.per_attribute_epsilon(), 0.5);
  EXPECT_DOUBLE_EQ(spl.oracle(0).epsilon(), 0.5);
}

TEST(SplTest, EstimatesTrackTruth) {
  data::Dataset ds = data::NurseryLike(7, 0.5);
  Spl spl(fo::Protocol::kGrr, ds.domain_sizes(), 20.0);
  Rng rng(6);
  std::vector<std::vector<fo::Report>> reports;
  reports.reserve(ds.n());
  for (int i = 0; i < ds.n(); ++i) {
    reports.push_back(spl.RandomizeUser(ds.Record(i), rng));
  }
  auto est = spl.Estimate(reports);
  EXPECT_LT(MseAvg(ds.Marginals(), est), 1e-3);
}

TEST(SplTest, HigherErrorThanSmpAtSameBudget) {
  // The paper's motivation for SMP: splitting the budget inflates error.
  data::Dataset ds = data::NurseryLike(9, 0.5);
  const double eps = 1.0;
  Rng rng(7);

  Spl spl(fo::Protocol::kGrr, ds.domain_sizes(), eps);
  std::vector<std::vector<fo::Report>> spl_reports;
  for (int i = 0; i < ds.n(); ++i) {
    spl_reports.push_back(spl.RandomizeUser(ds.Record(i), rng));
  }
  Smp smp(fo::Protocol::kGrr, ds.domain_sizes(), eps);
  std::vector<SmpReport> smp_reports;
  for (int i = 0; i < ds.n(); ++i) {
    smp_reports.push_back(smp.RandomizeUser(ds.Record(i), rng));
  }
  auto truth = ds.Marginals();
  EXPECT_GT(MseAvg(truth, spl.Estimate(spl_reports)),
            MseAvg(truth, smp.Estimate(smp_reports)));
}

TEST(SplTest, Validation) {
  EXPECT_THROW(Spl(fo::Protocol::kGrr, {4, 6}, 0.0), InvalidArgumentError);
  EXPECT_THROW(Spl(fo::Protocol::kGrr, {4}, 1.0), InvalidArgumentError);
  Spl spl(fo::Protocol::kGrr, {4, 6}, 1.0);
  EXPECT_THROW(spl.oracle(2), InvalidArgumentError);
}

}  // namespace
}  // namespace ldpr::multidim
