// Tests for the telemetry subsystem (src/obs): histogram bucket-boundary
// exactness, shard-merge bit-identity, registry semantics (idempotent Get,
// callback merging, render formats), and a scrape hammering a registry
// while writer threads ingest — the TSan-exercised invariant that scraping
// mid-epoch is always safe and loses no update.

#include <gtest/gtest.h>

#include <atomic>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/stats.h"
#include "obs/metrics.h"
#include "obs/span.h"
#include "serve/ingest.h"

namespace {

using namespace ldpr;
using obs::Histogram;

// Every bucket's lower bound maps back to its own index, the value one
// below the next bucket's lower bound still lands in the bucket, and the
// edges are strictly increasing: the closed-form inverse is exact for all
// 480 buckets.
TEST(ObsHistogramBuckets, BoundaryExactness) {
  for (int i = 0; i < Histogram::kBucketCount; ++i) {
    const long long lo = Histogram::BucketLowerBound(i);
    EXPECT_EQ(Histogram::BucketIndex(lo), i) << "lower bound of bucket " << i;
    if (i + 1 < Histogram::kBucketCount) {
      const long long next = Histogram::BucketLowerBound(i + 1);
      EXPECT_GT(next, lo) << "edges must increase at bucket " << i;
      EXPECT_EQ(Histogram::BucketIndex(next - 1), i)
          << "last value of bucket " << i;
    }
  }
}

TEST(ObsHistogramBuckets, ClampsAndErrorBound) {
  EXPECT_EQ(Histogram::BucketIndex(-1), 0);
  EXPECT_EQ(Histogram::BucketIndex(-1'000'000), 0);
  EXPECT_EQ(Histogram::BucketIndex(1LL << 62), Histogram::kBucketCount - 1);
  EXPECT_EQ(Histogram::BucketIndex((1LL << 62) + 12345),
            Histogram::kBucketCount - 1);

  // Log-linear with 8 sub-buckets per octave: relative bucket width is at
  // most 12.5% everywhere above the linear range.
  for (int i = Histogram::kSubBucketCount; i + 1 < Histogram::kBucketCount;
       ++i) {
    const double lo = static_cast<double>(Histogram::BucketLowerBound(i));
    const double hi = static_cast<double>(Histogram::BucketLowerBound(i + 1));
    EXPECT_LE(hi / lo, 1.125) << "bucket " << i;
  }
}

// Recording the same sample sequence through 8 shards or through 1 yields
// bit-identical merged snapshots — the shard split is invisible to readers,
// exactly like fo::Aggregator shards merged at Drain().
TEST(ObsHistogram, ShardMergeBitIdentity) {
  Histogram sharded(8);
  Histogram single(1);
  long long v = 1;
  std::vector<long long> samples;
  for (int i = 0; i < 10'000; ++i) {
    v = (v * 2862933555777941757LL + 3037000493LL) & ((1LL << 40) - 1);
    samples.push_back(v);
  }
  for (std::size_t i = 0; i < samples.size(); ++i) {
    sharded.Record(samples[i], static_cast<int>(i % 8));
    single.Record(samples[i]);
  }
  const obs::HistogramSnapshot a = sharded.Merge();
  const obs::HistogramSnapshot b = single.Merge();
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.sum, b.sum);
  ASSERT_EQ(a.buckets.size(), b.buckets.size());
  for (std::size_t i = 0; i < a.buckets.size(); ++i) {
    EXPECT_EQ(a.buckets[i], b.buckets[i]) << "bucket " << i;
  }
}

TEST(ObsCounter, ShardMergeMatchesSingleShard) {
  obs::Counter sharded(8);
  obs::Counter single(1);
  for (int i = 0; i < 1000; ++i) {
    sharded.Add(i, i % 8);
    single.Add(i);
  }
  EXPECT_EQ(sharded.Value(), single.Value());
  EXPECT_EQ(sharded.Value(), 999LL * 1000 / 2);
}

TEST(ObsHistogram, PercentilesAndMax) {
  Histogram h(1);
  for (int i = 0; i < 100; ++i) h.Record(i < 90 ? 10 : 1000);
  const obs::HistogramSnapshot s = h.Merge();
  EXPECT_EQ(s.count, 100);
  EXPECT_EQ(s.sum, 90 * 10 + 10 * 1000);
  // p50 is inside the bucket holding 10 (exact in the linear range).
  EXPECT_EQ(s.ValueAtPercentile(50), Histogram::BucketLowerBound(
                                         Histogram::BucketIndex(10) + 1));
  // p99 and max land in 1000's bucket; edges bound it within 12.5%.
  EXPECT_GE(s.ValueAtPercentile(99), 1000);
  EXPECT_GE(s.Max(), 1000);
  EXPECT_LE(static_cast<double>(s.Max()), 1000 * 1.125);

  EXPECT_EQ(obs::HistogramSnapshot{}.ValueAtPercentile(50), 0);
  EXPECT_EQ(obs::HistogramSnapshot{}.Max(), 0);
}

TEST(ObsRegistry, GetIsIdempotent) {
  obs::MetricsRegistry registry;
  auto a = registry.GetCounter("x_total", "", "help", 4);
  auto b = registry.GetCounter("x_total", "", "other help", 1);
  EXPECT_EQ(a.get(), b.get());
  auto c = registry.GetCounter("x_total", "reason=\"shed\"", "help");
  EXPECT_NE(a.get(), c.get());
  auto h1 = registry.GetHistogram("h_seconds", "", "help", 2,
                                  obs::HistogramUnit::kSeconds);
  auto h2 = registry.GetHistogram("h_seconds", "", "help");
  EXPECT_EQ(h1.get(), h2.get());
}

// Counter samples with one (name, labels) key from different exporters sum;
// gauge samples overwrite; unregistered callbacks stop contributing.
TEST(ObsRegistry, CallbackMergeSemantics) {
  obs::MetricsRegistry registry;
  const long long id1 = registry.RegisterCallback([](auto& out) {
    out.push_back({"cb_total", "", 3.0, obs::MetricKind::kCounter, "h"});
    out.push_back({"cb_gauge", "", 1.0, obs::MetricKind::kGauge, "h"});
  });
  const long long id2 = registry.RegisterCallback([](auto& out) {
    out.push_back({"cb_total", "", 4.0, obs::MetricKind::kCounter, "h"});
    out.push_back({"cb_gauge", "", 2.0, obs::MetricKind::kGauge, "h"});
  });
  EXPECT_NE(id1, id2);
  EXPECT_DOUBLE_EQ(registry.SampleValue("cb_total", ""), 7.0);
  EXPECT_DOUBLE_EQ(registry.SampleValue("cb_gauge", ""), 2.0);
  registry.UnregisterCallback(id2);
  EXPECT_DOUBLE_EQ(registry.SampleValue("cb_total", ""), 3.0);
  EXPECT_DOUBLE_EQ(registry.SampleValue("missing", ""), 0.0);

  // Owned instrument + callback sample under the same key also sum.
  registry.GetCounter("cb_total", "", "h")->Add(10);
  EXPECT_DOUBLE_EQ(registry.SampleValue("cb_total", ""), 13.0);
}

TEST(ObsRegistry, PrometheusFormat) {
  obs::MetricsRegistry registry;
  registry.GetCounter("req_total", "code=\"200\"", "Requests")->Add(40000);
  registry.GetCounter("req_total", "code=\"500\"", "Requests")->Add(8);
  registry.GetGauge("temp", "", "Temperature")->Set(1.5);
  auto h = registry.GetHistogram("lat_seconds", "", "Latency", 1,
                                 obs::HistogramUnit::kSeconds);
  h->RecordSeconds(2e-9);  // 2 ns -> linear bucket
  h->RecordSeconds(2e-9);

  const std::string text = registry.RenderPrometheus();
  // Integer-valued series render without a decimal point (CI greps depend
  // on it), one HELP/TYPE block per name.
  EXPECT_NE(text.find("# HELP req_total Requests\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE req_total counter\n"), std::string::npos);
  EXPECT_NE(text.find("req_total{code=\"200\"} 40000\n"), std::string::npos);
  EXPECT_NE(text.find("req_total{code=\"500\"} 8\n"), std::string::npos);
  EXPECT_NE(text.find("temp 1.5\n"), std::string::npos);
  EXPECT_NE(text.find("# TYPE lat_seconds histogram\n"), std::string::npos);
  // Both samples sit in the ns=2 bucket: cumulative count 2 at le=3e-09
  // (the bucket's upper edge in seconds), and at +Inf.
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"3e-09\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_bucket{le=\"+Inf\"} 2\n"),
            std::string::npos);
  EXPECT_NE(text.find("lat_seconds_count 2\n"), std::string::npos);
  EXPECT_NE(text.find("lat_seconds_sum 4e-09\n"), std::string::npos);
  // One TYPE line per name even with two labeled series.
  const std::string type_line = "# TYPE req_total";
  EXPECT_EQ(text.find(type_line), text.rfind(type_line));
}

TEST(ObsRegistry, JsonRender) {
  obs::MetricsRegistry registry;
  registry.GetCounter("a_total", "k=\"v\"", "h")->Add(5);
  registry.GetHistogram("b", "", "h")->Record(7);
  const std::string json = registry.RenderJson();
  EXPECT_NE(json.find("\"name\":\"a_total\""), std::string::npos);
  EXPECT_NE(json.find("\"labels\":\"k=\\\"v\\\"\""), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"counter\""), std::string::npos);
  EXPECT_NE(json.find("\"value\":5"), std::string::npos);
  EXPECT_NE(json.find("\"type\":\"histogram\""), std::string::npos);
  EXPECT_NE(json.find("\"count\":1"), std::string::npos);
}

TEST(ObsSpan, RecordsAndNullSafe) {
  obs::MetricsRegistry registry;
  auto h = registry.GetHistogram("span_seconds", "", "h", 1,
                                 obs::HistogramUnit::kSeconds);
  {
    obs::Span span(h.get());
  }
  EXPECT_EQ(h->Merge().count, 1);
  obs::Span manual(h.get());
  EXPECT_GE(manual.Stop(), 0.0);
  manual.Stop();  // disarmed: no double record
  EXPECT_EQ(h->Merge().count, 2);
  obs::Span null_span(nullptr);  // must not crash
  null_span.Stop();
}

// The shared reject formatter and the wire-level reason names must agree:
// the admin endpoint's per-reason series, the serve-demo footer, and the
// server's RejectReasonName all print the same vocabulary.
TEST(ObsStats, RejectFieldNamesMatchWireNames) {
  IngestCounters c;
  c.rejected = 1;
  c.duplicates = 2;
  c.rate_limited = 3;
  c.shed = 4;
  c.closed_epoch = 5;
  std::vector<std::string> names;
  std::vector<long long> values;
  ForEachRejectField(c, [&](const char* name, long long value) {
    names.push_back(name);
    values.push_back(value);
  });
  ASSERT_EQ(names.size(), 5u);
  EXPECT_EQ(names[0], serve::RejectReasonName(serve::RejectReason::kMalformed));
  EXPECT_EQ(names[1], serve::RejectReasonName(serve::RejectReason::kDuplicate));
  EXPECT_EQ(names[2],
            serve::RejectReasonName(serve::RejectReason::kRateLimited));
  EXPECT_EQ(names[3], serve::RejectReasonName(serve::RejectReason::kShed));
  EXPECT_EQ(names[4],
            serve::RejectReasonName(serve::RejectReason::kClosedEpoch));
  EXPECT_EQ(values, (std::vector<long long>{1, 2, 3, 4, 5}));
  EXPECT_EQ(FormatRejects(c),
            "rejects: malformed=1 duplicate=2 rate-limited=3 shed=4 "
            "closed-epoch=5");
}

// Writers hammer a counter and histogram on their own shards while a scraper
// renders in a loop: under TSan this proves the scrape path is race-free,
// and after joining, every single update is visible (relaxed atomics lose
// nothing — they only relax ordering).
TEST(ObsRegistry, ScrapeDuringConcurrentIngest) {
  obs::MetricsRegistry registry;
  constexpr int kWriters = 4;
  constexpr long long kPerWriter = 20'000;
  auto counter = registry.GetCounter("w_total", "", "h", kWriters);
  auto hist = registry.GetHistogram("w_hist", "", "h", kWriters);
  std::atomic<long long> exported{0};
  registry.RegisterCallback([&](std::vector<obs::Sample>& out) {
    out.push_back({"cb_live_total", "",
                   static_cast<double>(
                       exported.load(std::memory_order_relaxed)),
                   obs::MetricKind::kCounter, "h"});
  });

  std::atomic<bool> done{false};
  std::thread scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      const std::string text = registry.RenderPrometheus();
      EXPECT_NE(text.find("w_total"), std::string::npos);
      (void)registry.RenderJson();
      (void)registry.SampleValue("w_total", "");
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      for (long long i = 0; i < kPerWriter; ++i) {
        counter->Increment(w);
        hist->Record(i & 1023, w);
        exported.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  scraper.join();

  EXPECT_EQ(counter->Value(), kWriters * kPerWriter);
  const obs::HistogramSnapshot s = hist->Merge();
  EXPECT_EQ(s.count, kWriters * kPerWriter);
  EXPECT_DOUBLE_EQ(registry.SampleValue("w_total", ""),
                   static_cast<double>(kWriters * kPerWriter));
  EXPECT_DOUBLE_EQ(registry.SampleValue("cb_live_total", ""),
                   static_cast<double>(kWriters * kPerWriter));
}

}  // namespace
