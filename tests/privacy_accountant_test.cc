// Tests for the privacy-loss accountant (privacy/accountant): ledger
// arithmetic for the three solutions, memoization semantics, the closed
// forms for expected SMP totals, and agreement between simulation and the
// closed forms across a (d, surveys) parameter sweep.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "core/check.h"
#include "multidim/amplification.h"
#include "privacy/accountant.h"

namespace ldpr::privacy {
namespace {

TEST(AccountantTest, FreshLedgerIsZero) {
  Accountant ledger(5);
  EXPECT_DOUBLE_EQ(ledger.TotalEpsilon(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.WorstAttributeEpsilon(), 0.0);
  EXPECT_EQ(ledger.num_randomizations(), 0);
  EXPECT_EQ(ledger.d(), 5);
}

TEST(AccountantTest, SmpChargesOneAttribute) {
  Accountant ledger(3);
  ledger.RecordSmp(1, 2.0);
  EXPECT_DOUBLE_EQ(ledger.TotalEpsilon(), 2.0);
  EXPECT_DOUBLE_EQ(ledger.AttributeEpsilon(0), 0.0);
  EXPECT_DOUBLE_EQ(ledger.AttributeEpsilon(1), 2.0);
  ledger.RecordSmp(1, 2.0);  // fresh randomization of the same attribute
  EXPECT_DOUBLE_EQ(ledger.AttributeEpsilon(1), 4.0);
  EXPECT_DOUBLE_EQ(ledger.TotalEpsilon(), 4.0);
}

TEST(AccountantTest, MemoizedReplayIsFree) {
  Accountant ledger(3);
  ledger.RecordSmp(0, 1.0);
  ledger.RecordSmp(0, 1.0, /*memoized=*/true);
  ledger.RecordRsFd(1, 3, 1.0, /*memoized=*/true);
  EXPECT_DOUBLE_EQ(ledger.TotalEpsilon(), 1.0);
  EXPECT_EQ(ledger.num_randomizations(), 1);
}

TEST(AccountantTest, SplSplitsEvenly) {
  Accountant ledger(4);
  ledger.RecordSpl({0, 1, 2, 3}, 2.0);
  for (int j = 0; j < 4; ++j) {
    EXPECT_DOUBLE_EQ(ledger.AttributeEpsilon(j), 0.5);
  }
  EXPECT_DOUBLE_EQ(ledger.TotalEpsilon(), 2.0);
  EXPECT_EQ(ledger.num_randomizations(), 4);
}

TEST(AccountantTest, RsFdChargesAmplifiedBudgetPerAttribute) {
  Accountant ledger(5);
  const double eps = 1.0;
  const int survey_d = 5;
  ledger.RecordRsFd(2, survey_d, eps);
  // Tuple-level sequential total grows by eps...
  EXPECT_DOUBLE_EQ(ledger.TotalEpsilon(), eps);
  // ...but the sampled attribute saw the amplified randomizer.
  EXPECT_DOUBLE_EQ(ledger.AttributeEpsilon(2),
                   multidim::AmplifiedEpsilon(eps, survey_d));
  EXPECT_GT(ledger.AttributeEpsilon(2), eps);
}

TEST(AccountantTest, WorstAttributeTracksMaximum) {
  Accountant ledger(3);
  ledger.RecordSmp(0, 1.0);
  ledger.RecordSmp(1, 3.0);
  ledger.RecordSmp(2, 2.0);
  EXPECT_DOUBLE_EQ(ledger.WorstAttributeEpsilon(), 3.0);
}

TEST(AccountantTest, RejectsInvalidArguments) {
  EXPECT_THROW(Accountant(0), InvalidArgumentError);
  Accountant ledger(3);
  EXPECT_THROW(ledger.RecordSmp(3, 1.0), InvalidArgumentError);
  EXPECT_THROW(ledger.RecordSmp(-1, 1.0), InvalidArgumentError);
  EXPECT_THROW(ledger.RecordSmp(0, 0.0), InvalidArgumentError);
  EXPECT_THROW(ledger.RecordSpl({}, 1.0), InvalidArgumentError);
  EXPECT_THROW(ledger.RecordRsFd(0, 1, 1.0), InvalidArgumentError);
  EXPECT_THROW(ledger.AttributeEpsilon(5), InvalidArgumentError);
}

TEST(AccountantClosedFormTest, UniformIsLinearInSurveys) {
  EXPECT_DOUBLE_EQ(ExpectedSmpTotalEpsilonUniform(10, 5, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(ExpectedSmpTotalEpsilonUniform(10, 0, 1.0), 0.0);
  EXPECT_THROW(ExpectedSmpTotalEpsilonUniform(4, 5, 1.0),
               InvalidArgumentError);
}

TEST(AccountantClosedFormTest, NonUniformSaturatesAtDEpsilon) {
  const int d = 5;
  const double eps = 2.0;
  double prev = 0.0;
  for (int surveys : {1, 2, 5, 10, 50, 500}) {
    const double total = ExpectedSmpTotalEpsilonNonUniform(d, surveys, eps);
    EXPECT_GT(total, prev);
    EXPECT_LT(total, d * eps + 1e-9);
    prev = total;
  }
  // After many surveys every attribute has been drawn once: total -> d eps.
  EXPECT_NEAR(ExpectedSmpTotalEpsilonNonUniform(d, 500, eps), d * eps, 1e-6);
}

TEST(AccountantClosedFormTest, NonUniformNeverExceedsUniform) {
  for (int d : {2, 5, 18}) {
    for (int surveys = 0; surveys <= d; ++surveys) {
      EXPECT_LE(ExpectedSmpTotalEpsilonNonUniform(d, surveys, 1.0),
                ExpectedSmpTotalEpsilonUniform(d, surveys, 1.0) + 1e-12);
    }
  }
}

// Simulation agrees with the closed forms across (d, surveys).
class LedgerSimulationTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LedgerSimulationTest, MatchesClosedForms) {
  const auto [d, surveys] = GetParam();
  const double eps = 1.5;
  const int users = 4000;
  Rng rng(1234 + d * 31 + surveys);

  if (surveys <= d) {
    LedgerSummary uniform =
        SimulateSmpLedgers(d, surveys, eps, /*with_replacement=*/false, users,
                           rng);
    // Without replacement the total is deterministic.
    EXPECT_DOUBLE_EQ(uniform.mean_total,
                     ExpectedSmpTotalEpsilonUniform(d, surveys, eps));
    EXPECT_DOUBLE_EQ(uniform.max_total, uniform.mean_total);
    EXPECT_DOUBLE_EQ(uniform.mean_worst_attribute, surveys > 0 ? eps : 0.0);
  }

  LedgerSummary nonuniform = SimulateSmpLedgers(
      d, surveys, eps, /*with_replacement=*/true, users, rng);
  const double expected = ExpectedSmpTotalEpsilonNonUniform(d, surveys, eps);
  EXPECT_NEAR(nonuniform.mean_total, expected, 0.05 * std::max(expected, eps));
  // Memoization can only help: totals never exceed surveys * eps.
  EXPECT_LE(nonuniform.max_total, surveys * eps + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(DSurveyGrid, LedgerSimulationTest,
                         ::testing::Combine(::testing::Values(2, 5, 10, 18),
                                            ::testing::Values(1, 3, 5, 10)));

}  // namespace
}  // namespace ldpr::privacy
