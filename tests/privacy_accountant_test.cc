// Tests for the privacy-loss accountant (privacy/accountant): ledger
// arithmetic for the three solutions, memoization semantics, the closed
// forms for expected SMP totals, and agreement between simulation and the
// closed forms across a (d, surveys) parameter sweep.

#include <cmath>
#include <tuple>

#include <gtest/gtest.h>

#include "core/check.h"
#include "fo/analytic_acc.h"
#include "multidim/amplification.h"
#include "privacy/accountant.h"

namespace ldpr::privacy {
namespace {

TEST(AccountantTest, FreshLedgerIsZero) {
  Accountant ledger(5);
  EXPECT_DOUBLE_EQ(ledger.TotalEpsilon(), 0.0);
  EXPECT_DOUBLE_EQ(ledger.WorstAttributeEpsilon(), 0.0);
  EXPECT_EQ(ledger.num_randomizations(), 0);
  EXPECT_EQ(ledger.d(), 5);
}

TEST(AccountantTest, SmpChargesOneAttribute) {
  Accountant ledger(3);
  ledger.RecordSmp(1, 2.0);
  EXPECT_DOUBLE_EQ(ledger.TotalEpsilon(), 2.0);
  EXPECT_DOUBLE_EQ(ledger.AttributeEpsilon(0), 0.0);
  EXPECT_DOUBLE_EQ(ledger.AttributeEpsilon(1), 2.0);
  ledger.RecordSmp(1, 2.0);  // fresh randomization of the same attribute
  EXPECT_DOUBLE_EQ(ledger.AttributeEpsilon(1), 4.0);
  EXPECT_DOUBLE_EQ(ledger.TotalEpsilon(), 4.0);
}

TEST(AccountantTest, MemoizedReplayIsFree) {
  Accountant ledger(3);
  ledger.RecordSmp(0, 1.0);
  ledger.RecordSmp(0, 1.0, /*memoized=*/true);
  ledger.RecordRsFd(1, 3, 1.0, /*memoized=*/true);
  EXPECT_DOUBLE_EQ(ledger.TotalEpsilon(), 1.0);
  EXPECT_EQ(ledger.num_randomizations(), 1);
}

TEST(AccountantTest, SplSplitsEvenly) {
  Accountant ledger(4);
  ledger.RecordSpl({0, 1, 2, 3}, 2.0);
  for (int j = 0; j < 4; ++j) {
    EXPECT_DOUBLE_EQ(ledger.AttributeEpsilon(j), 0.5);
  }
  EXPECT_DOUBLE_EQ(ledger.TotalEpsilon(), 2.0);
  EXPECT_EQ(ledger.num_randomizations(), 4);
}

TEST(AccountantTest, RsFdChargesAmplifiedBudgetPerAttribute) {
  Accountant ledger(5);
  const double eps = 1.0;
  const int survey_d = 5;
  ledger.RecordRsFd(2, survey_d, eps);
  // Tuple-level sequential total grows by eps...
  EXPECT_DOUBLE_EQ(ledger.TotalEpsilon(), eps);
  // ...but the sampled attribute saw the amplified randomizer.
  EXPECT_DOUBLE_EQ(ledger.AttributeEpsilon(2),
                   multidim::AmplifiedEpsilon(eps, survey_d));
  EXPECT_GT(ledger.AttributeEpsilon(2), eps);
}

// Audit of the amplification arithmetic: the per-attribute budget charged
// by RecordRsFd must be exactly the paper's eps' = ln(d_sv (e^eps - 1) + 1)
// across the (eps, d) grid, and plugging that eps' into the closed-form GRR
// attacker accuracy must reproduce the fraction the uncovered-attribute
// adversary of Section 3.3 achieves.
TEST(AccountantTest, RsFdAmplificationMatchesClosedForm) {
  for (const double eps : {0.25, 1.0, 2.0, 4.0}) {
    for (const int d : {2, 3, 5, 10}) {
      Accountant ledger(d);
      ledger.RecordRsFd(0, d, eps);
      const double amplified =
          std::log(d * (std::exp(eps) - 1.0) + 1.0);
      EXPECT_DOUBLE_EQ(ledger.AttributeEpsilon(0), amplified)
          << "eps=" << eps << " d=" << d;
      EXPECT_DOUBLE_EQ(ledger.AttributeEpsilon(0),
                       multidim::AmplifiedEpsilon(eps, d));
      EXPECT_DOUBLE_EQ(ledger.TotalEpsilon(), eps);

      // Cross-check against the attacker-accuracy closed form: at the
      // amplified budget a GRR adversary sees e^eps' = d(e^eps - 1) + 1.
      const int k = 7;
      const double e_amp = d * (std::exp(eps) - 1.0) + 1.0;
      EXPECT_NEAR(fo::ExpectedAttackAcc(fo::Protocol::kGrr, amplified, k),
                  e_amp / (e_amp + k - 1), 1e-12);
    }
  }
}

// The bulk entry points charge exactly count identical fresh surveys.
TEST(AccountantTest, BulkRecordsMatchRepeatedSingles) {
  const double eps = 1.5;
  const long long count = 9;

  Accountant bulk(4), singles(4);
  bulk.RecordSmpBulk(2, eps, count);
  for (long long i = 0; i < count; ++i) singles.RecordSmp(2, eps);
  EXPECT_NEAR(bulk.TotalEpsilon(), singles.TotalEpsilon(), 1e-9);
  EXPECT_NEAR(bulk.AttributeEpsilon(2), singles.AttributeEpsilon(2), 1e-9);
  EXPECT_EQ(bulk.num_randomizations(), singles.num_randomizations());

  Accountant bulk_spl(4), singles_spl(4);
  bulk_spl.RecordSplBulk(eps, count);
  for (long long i = 0; i < count; ++i) {
    singles_spl.RecordSpl({0, 1, 2, 3}, eps);
  }
  EXPECT_NEAR(bulk_spl.TotalEpsilon(), singles_spl.TotalEpsilon(), 1e-9);
  for (int j = 0; j < 4; ++j) {
    EXPECT_NEAR(bulk_spl.AttributeEpsilon(j), singles_spl.AttributeEpsilon(j),
                1e-9);
  }
  EXPECT_EQ(bulk_spl.num_randomizations(), singles_spl.num_randomizations());

  Accountant bulk_fd(4), singles_fd(4);
  bulk_fd.RecordRsFdBulk(1, 4, eps, count);
  for (long long i = 0; i < count; ++i) singles_fd.RecordRsFd(1, 4, eps);
  EXPECT_NEAR(bulk_fd.TotalEpsilon(), singles_fd.TotalEpsilon(), 1e-9);
  EXPECT_NEAR(bulk_fd.AttributeEpsilon(1), singles_fd.AttributeEpsilon(1),
              1e-9);
  EXPECT_EQ(bulk_fd.num_randomizations(), singles_fd.num_randomizations());

  // A zero count is a no-op, not an error.
  Accountant empty(2);
  empty.RecordSmpBulk(0, eps, 0);
  EXPECT_DOUBLE_EQ(empty.TotalEpsilon(), 0.0);
  EXPECT_EQ(empty.num_randomizations(), 0);
}

// MakeReport freezes the epsilon fields and the fresh/memoized tallies.
TEST(AccountantTest, MakeReportFreezesLedgerState) {
  Accountant ledger(3);
  ledger.RecordSmpBulk(1, 2.0, 10);
  // Amplified to ln(3(e^1.5 - 1) + 1) ~ 2.44 — the report's running max.
  ledger.RecordRsFdBulk(0, 3, 1.5, 4);
  ledger.RecordMemoized(6);
  const LedgerReport report = ledger.MakeReport();
  EXPECT_DOUBLE_EQ(report.total_epsilon, ledger.TotalEpsilon());
  ASSERT_EQ(report.per_attribute.size(), 3u);
  EXPECT_DOUBLE_EQ(report.per_attribute[1], ledger.AttributeEpsilon(1));
  EXPECT_DOUBLE_EQ(report.worst_attribute_epsilon,
                   ledger.WorstAttributeEpsilon());
  EXPECT_DOUBLE_EQ(report.amplified_epsilon,
                   multidim::AmplifiedEpsilon(1.5, 3));
  EXPECT_EQ(report.fresh, 14);
  EXPECT_EQ(report.memoized, 6);
  EXPECT_DOUBLE_EQ(report.MemoizationHitRate(), 6.0 / 20.0);
  EXPECT_DOUBLE_EQ(LedgerReport{}.MemoizationHitRate(), 0.0);
}

TEST(AccountantTest, WorstAttributeTracksMaximum) {
  Accountant ledger(3);
  ledger.RecordSmp(0, 1.0);
  ledger.RecordSmp(1, 3.0);
  ledger.RecordSmp(2, 2.0);
  EXPECT_DOUBLE_EQ(ledger.WorstAttributeEpsilon(), 3.0);
}

TEST(AccountantTest, RejectsInvalidArguments) {
  EXPECT_THROW(Accountant(0), InvalidArgumentError);
  Accountant ledger(3);
  EXPECT_THROW(ledger.RecordSmp(3, 1.0), InvalidArgumentError);
  EXPECT_THROW(ledger.RecordSmp(-1, 1.0), InvalidArgumentError);
  EXPECT_THROW(ledger.RecordSmp(0, 0.0), InvalidArgumentError);
  EXPECT_THROW(ledger.RecordSpl({}, 1.0), InvalidArgumentError);
  EXPECT_THROW(ledger.RecordRsFd(0, 1, 1.0), InvalidArgumentError);
  EXPECT_THROW(ledger.AttributeEpsilon(5), InvalidArgumentError);
}

TEST(AccountantClosedFormTest, UniformIsLinearInSurveys) {
  EXPECT_DOUBLE_EQ(ExpectedSmpTotalEpsilonUniform(10, 5, 1.0), 5.0);
  EXPECT_DOUBLE_EQ(ExpectedSmpTotalEpsilonUniform(10, 0, 1.0), 0.0);
  EXPECT_THROW(ExpectedSmpTotalEpsilonUniform(4, 5, 1.0),
               InvalidArgumentError);
}

TEST(AccountantClosedFormTest, NonUniformSaturatesAtDEpsilon) {
  const int d = 5;
  const double eps = 2.0;
  double prev = 0.0;
  for (int surveys : {1, 2, 5, 10, 50, 500}) {
    const double total = ExpectedSmpTotalEpsilonNonUniform(d, surveys, eps);
    EXPECT_GT(total, prev);
    EXPECT_LT(total, d * eps + 1e-9);
    prev = total;
  }
  // After many surveys every attribute has been drawn once: total -> d eps.
  EXPECT_NEAR(ExpectedSmpTotalEpsilonNonUniform(d, 500, eps), d * eps, 1e-6);
}

TEST(AccountantClosedFormTest, NonUniformNeverExceedsUniform) {
  for (int d : {2, 5, 18}) {
    for (int surveys = 0; surveys <= d; ++surveys) {
      EXPECT_LE(ExpectedSmpTotalEpsilonNonUniform(d, surveys, 1.0),
                ExpectedSmpTotalEpsilonUniform(d, surveys, 1.0) + 1e-12);
    }
  }
}

// Simulation agrees with the closed forms across (d, surveys).
class LedgerSimulationTest
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LedgerSimulationTest, MatchesClosedForms) {
  const auto [d, surveys] = GetParam();
  const double eps = 1.5;
  const int users = 4000;
  Rng rng(1234 + d * 31 + surveys);

  if (surveys <= d) {
    LedgerSummary uniform =
        SimulateSmpLedgers(d, surveys, eps, /*with_replacement=*/false, users,
                           rng);
    // Without replacement the total is deterministic.
    EXPECT_DOUBLE_EQ(uniform.mean_total,
                     ExpectedSmpTotalEpsilonUniform(d, surveys, eps));
    EXPECT_DOUBLE_EQ(uniform.max_total, uniform.mean_total);
    EXPECT_DOUBLE_EQ(uniform.mean_worst_attribute, surveys > 0 ? eps : 0.0);
  }

  LedgerSummary nonuniform = SimulateSmpLedgers(
      d, surveys, eps, /*with_replacement=*/true, users, rng);
  const double expected = ExpectedSmpTotalEpsilonNonUniform(d, surveys, eps);
  EXPECT_NEAR(nonuniform.mean_total, expected, 0.05 * std::max(expected, eps));
  // Memoization can only help: totals never exceed surveys * eps.
  EXPECT_LE(nonuniform.max_total, surveys * eps + 1e-12);
}

INSTANTIATE_TEST_SUITE_P(DSurveyGrid, LedgerSimulationTest,
                         ::testing::Combine(::testing::Values(2, 5, 10, 18),
                                            ::testing::Values(1, 3, 5, 10)));

}  // namespace
}  // namespace ldpr::privacy
