#include "privacy/pie.h"

#include <cmath>

#include <gtest/gtest.h>

#include "core/check.h"

namespace ldpr::privacy {
namespace {

const double kLog2E = std::log2(std::exp(1.0));

TEST(PieTest, AlphaFromEpsilonTakesMinimum) {
  // Small eps: the eps^2 term binds.
  EXPECT_NEAR(AlphaFromEpsilon(0.5, 1 << 20, 1 << 20), 0.25 * kLog2E, 1e-12);
  // eps >= 1: the linear term binds (for big n, k).
  EXPECT_NEAR(AlphaFromEpsilon(2.0, 1 << 20, 1 << 20), 2.0 * kLog2E, 1e-12);
  // Tiny domain: log2 k binds.
  EXPECT_NEAR(AlphaFromEpsilon(50.0, 1 << 20, 4), 2.0, 1e-12);
  // Tiny population: log2 n binds.
  EXPECT_NEAR(AlphaFromEpsilon(50.0, 8, 1 << 20), 3.0, 1e-12);
}

TEST(PieTest, AlphaFromBayesError) {
  // alpha = (1 - beta) log2 n - 1.
  EXPECT_NEAR(AlphaFromBayesError(0.5, 1 << 10), 0.5 * 10.0 - 1.0, 1e-12);
  // High beta can push alpha to the floor at 0.
  EXPECT_DOUBLE_EQ(AlphaFromBayesError(0.999, 4), 0.0);
  EXPECT_THROW(AlphaFromBayesError(-0.1, 100), InvalidArgumentError);
  EXPECT_THROW(AlphaFromBayesError(1.1, 100), InvalidArgumentError);
  EXPECT_THROW(AlphaFromBayesError(0.5, 1), InvalidArgumentError);
}

TEST(PieTest, AlphaDecreasesWithBeta) {
  double prev = 1e18;
  for (double beta = 0.5; beta <= 0.95; beta += 0.05) {
    double a = AlphaFromBayesError(beta, 45222);
    EXPECT_LT(a, prev);
    prev = a;
  }
}

TEST(PieTest, CalibrationSmallDomainSkipsRandomizer) {
  // Adult-scale n = 45222 (log2 n ~ 15.5). At beta = 0.5, alpha ~ 6.7:
  // every attribute with k <= 2^6.7 ~ 104 goes in the clear.
  PieCalibration cal = CalibrateForBayesError(0.5, 45222, 16);
  EXPECT_FALSE(cal.use_randomizer);
  // Large-domain attribute still needs a randomizer at high beta.
  PieCalibration cal2 = CalibrateForBayesError(0.95, 45222, 74);
  EXPECT_TRUE(cal2.use_randomizer);
  EXPECT_GT(cal2.epsilon, 0.0);
}

TEST(PieTest, CalibrationEpsilonSolvesProposition1) {
  // beta = 0.9 gives a non-degenerate alpha budget at Adult scale.
  PieCalibration cal = CalibrateForBayesError(0.9, 45222, 1 << 20);
  ASSERT_TRUE(cal.use_randomizer);
  // The chosen eps must spend (at equality) the alpha budget:
  // min(eps, eps^2) * log2 e <= alpha (+ tolerance).
  const double spent =
      std::min(cal.epsilon, cal.epsilon * cal.epsilon) * kLog2E;
  EXPECT_LE(spent, cal.alpha + 1e-9);
  EXPECT_NEAR(spent, cal.alpha, 1e-9);
}

TEST(PieTest, CalibrationEpsilonGrowsAsBetaDrops) {
  // Looser Bayes-error requirements yield larger budgets.
  const int k = 1 << 20;  // force the randomizer branch throughout
  double prev = 0.0;
  for (double beta : {0.95, 0.85, 0.75, 0.65, 0.55}) {
    PieCalibration cal = CalibrateForBayesError(beta, 45222, k);
    ASSERT_TRUE(cal.use_randomizer) << "beta=" << beta;
    EXPECT_GE(cal.epsilon, prev) << "beta=" << beta;
    prev = cal.epsilon;
  }
}

TEST(PieTest, CalibrationDegenerateBetaStillUsable) {
  // beta ~ 1 drives alpha to 0; the calibration must still return a usable
  // (tiny) positive budget instead of a degenerate zero.
  PieCalibration cal = CalibrateForBayesError(0.9999, 1024, 1 << 20);
  ASSERT_TRUE(cal.use_randomizer);
  EXPECT_GT(cal.epsilon, 0.0);
}

TEST(PieTest, LdpImpliesPieMonotonicity) {
  // Proposition 1's alpha is non-decreasing in eps.
  double prev = 0.0;
  for (double eps = 0.1; eps <= 10.0; eps += 0.1) {
    double a = AlphaFromEpsilon(eps, 45222, 74);
    EXPECT_GE(a, prev - 1e-12);
    prev = a;
  }
}

TEST(PieTest, Validation) {
  EXPECT_THROW(AlphaFromEpsilon(0.0, 100, 4), InvalidArgumentError);
  EXPECT_THROW(AlphaFromEpsilon(1.0, 1, 4), InvalidArgumentError);
  EXPECT_THROW(AlphaFromEpsilon(1.0, 100, 1), InvalidArgumentError);
  EXPECT_THROW(CalibrateForBayesError(0.5, 100, 1), InvalidArgumentError);
}

}  // namespace
}  // namespace ldpr::privacy
