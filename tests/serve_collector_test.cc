// Scalar collection service (serve/collector): the sealed snapshot of a
// wire-ingested epoch must be bit-identical to a batch fo::Aggregator fed
// the same report stream (the PR's acceptance gate), sealing must be
// independent of lane/thread configuration, malformed buffers must be
// rejected cleanly (no UB under ASan/UBSan, nothing accumulated), and the
// epoch lifecycle must enforce open -> ingest -> seal.

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/check.h"
#include "core/sampling.h"
#include "fo/bitslice.h"
#include "fo/factory.h"
#include "fo/wire.h"
#include "serve/collector.h"
#include "serve/loadgen.h"
#include "serve/longitudinal.h"

namespace ldpr::serve {
namespace {

std::vector<int> ZipfValues(int n, int k, Rng& rng) {
  CategoricalSampler sampler(ZipfDistribution(k, 1.1));
  std::vector<int> values(n);
  for (int& v : values) v = sampler.Sample(rng);
  return values;
}

class ServeCollectorTest : public ::testing::TestWithParam<fo::Protocol> {};

INSTANTIATE_TEST_SUITE_P(AllProtocols, ServeCollectorTest,
                         ::testing::ValuesIn(fo::AllProtocols()),
                         [](const auto& info) {
                           return std::string(fo::ProtocolName(info.param));
                         });

// Acceptance: Collector epoch snapshots are bit-identical to the equivalent
// batch fo::Aggregator::Estimate on the same report stream.
TEST_P(ServeCollectorTest, SnapshotBitIdenticalToBatchAggregator) {
  const int k = 23;  // not a power of two: exercises value-range rejection
  const int n = 1500;
  auto oracle = fo::MakeOracle(GetParam(), k, 1.5);
  Rng rng(42);
  const std::vector<int> values = ZipfValues(n, k, rng);

  // Client side: real reports, serialized to wire buffers.
  std::vector<fo::Report> reports;
  std::vector<std::vector<std::uint8_t>> frames;
  reports.reserve(n);
  frames.reserve(n);
  for (int v : values) {
    reports.push_back(oracle->Randomize(v, rng));
    frames.push_back(fo::SerializeReport(*oracle, reports.back()));
  }

  // Reference: one batch aggregator over the in-process reports.
  auto batch = oracle->MakeAggregator();
  for (const fo::Report& r : reports) batch->Accumulate(r);

  CollectorOptions options;
  options.lanes = 4;
  EpochManager manager(*oracle, options);
  EXPECT_EQ(manager.OpenEpoch(), 0);
  for (int i = 0; i < n; ++i) {
    // Scatter reports over lanes in an arbitrary pattern: lane assignment
    // must not matter.
    EXPECT_TRUE(manager.collector()
                    .Ingest({frames[i], std::nullopt, i * 7 + i % 3})
                    .accepted);
  }
  const EstimateSnapshot& snapshot = manager.Seal();

  EXPECT_EQ(snapshot.epoch, 0);
  EXPECT_EQ(snapshot.n, n);
  EXPECT_EQ(snapshot.counts, batch->counts());
  // Same integer counts, same Eq. (2) arithmetic: exact double equality.
  EXPECT_EQ(snapshot.frequencies, batch->Estimate());
  EXPECT_EQ(snapshot.consistent,
            batch->Estimate(fo::ConsistencyMethod::kNormSub));
  EXPECT_EQ(snapshot.stats.reports, n);
  EXPECT_EQ(snapshot.stats.rejected, 0);
  EXPECT_EQ(snapshot.stats.bytes,
            static_cast<long long>(n) *
                static_cast<long long>(manager.report_bytes()));
}

// Sealing depends only on the multiset of accepted reports: any lane count,
// producer thread count, or ingest order yields the same snapshot.
TEST_P(ServeCollectorTest, SealingIsLaneAndThreadCountIndependent) {
  const int k = 17;
  const int n = 4000;
  auto oracle = fo::MakeOracle(GetParam(), k, 2.0);
  Rng seed_rng(7);
  const std::vector<int> values = ZipfValues(n, k, seed_rng);

  // The load generator itself must be thread-count independent.
  sim::Options one_thread;
  one_thread.threads = 1;
  sim::Options four_threads;
  four_threads.threads = 4;
  Rng root_a(99);
  Rng root_b(99);
  const EncodedStream stream_a =
      EncodeScalarLoad(*oracle, values, root_a, one_thread);
  const EncodedStream stream_b =
      EncodeScalarLoad(*oracle, values, root_b, four_threads);
  EXPECT_EQ(stream_a.bytes, stream_b.bytes);

  EstimateSnapshot reference;
  for (const auto& [lanes, threads] :
       std::vector<std::pair<int, int>>{{1, 1}, {3, 2}, {8, 4}}) {
    CollectorOptions options;
    options.lanes = lanes;
    EpochManager manager(*oracle, options);
    manager.OpenEpoch();
    EXPECT_EQ(IngestStream(manager.collector(), stream_a, threads), n);
    const EstimateSnapshot& snapshot = manager.Seal();
    if (lanes == 1) {
      reference = snapshot;
      continue;
    }
    EXPECT_EQ(snapshot.counts, reference.counts) << "lanes=" << lanes;
    EXPECT_EQ(snapshot.frequencies, reference.frequencies);
    EXPECT_EQ(snapshot.consistent, reference.consistent);
    EXPECT_EQ(snapshot.n, reference.n);
  }
}

// Property test: randomized, truncated and corrupted buffers are rejected
// cleanly — never accumulated, never UB (this suite runs under the ASan
// fast label).
TEST_P(ServeCollectorTest, MalformedBuffersAreRejectedCleanly) {
  const int k = 100;
  auto oracle = fo::MakeOracle(GetParam(), k, 1.0);
  EpochManager manager(*oracle, CollectorOptions{.lanes = 2});
  manager.OpenEpoch();
  Collector& collector = manager.collector();
  const std::size_t frame_bytes = collector.report_bytes();

  Rng rng(1234);
  long long accepted = 0;
  long long attempted = 0;

  // Truncations and extensions of valid frames are always rejected.
  const std::vector<std::uint8_t> valid = fo::SerializeReport(
      *oracle, oracle->Randomize(static_cast<int>(rng.UniformInt(k)), rng));
  std::vector<std::uint8_t> truncated(valid.begin(), valid.end() - 1);
  EXPECT_FALSE(collector.Ingest({truncated}).accepted);
  std::vector<std::uint8_t> extended = valid;
  extended.push_back(0);
  EXPECT_FALSE(collector.Ingest({extended}).accepted);
  EXPECT_FALSE(collector
                   .Ingest({{static_cast<const std::uint8_t*>(nullptr),
                             frame_bytes}})
                   .accepted);
  EXPECT_FALSE(collector.Ingest({{valid.data(), 0}}).accepted);
  attempted += 4;

  // Random buffers of random sizes: may decode by chance at the exact frame
  // size, must never crash or throw.
  for (int trial = 0; trial < 3000; ++trial) {
    const std::size_t size = rng.UniformInt(2 * frame_bytes + 2);
    std::vector<std::uint8_t> buffer(size);
    for (std::uint8_t& b : buffer) {
      b = static_cast<std::uint8_t>(rng.UniformInt(256));
    }
    accepted += collector
                        .Ingest({buffer, std::nullopt,
                                 static_cast<int>(rng.UniformInt(64))})
                        .accepted
                    ? 1
                    : 0;
    ++attempted;
  }

  // Bit flips in valid frames: either still-valid payloads (accepted) or
  // clean rejections; the ledger must balance either way.
  for (int trial = 0; trial < 500; ++trial) {
    std::vector<std::uint8_t> frame = fo::SerializeReport(
        *oracle, oracle->Randomize(static_cast<int>(rng.UniformInt(k)), rng));
    frame[rng.UniformInt(frame.size())] ^=
        static_cast<std::uint8_t>(1u << rng.UniformInt(8));
    accepted += collector.Ingest({frame, std::nullopt, trial}).accepted ? 1 : 0;
    ++attempted;
  }

  const EstimateSnapshot& snapshot = manager.Seal();
  EXPECT_EQ(snapshot.n, accepted);
  EXPECT_EQ(snapshot.stats.reports, accepted);
  EXPECT_EQ(snapshot.stats.rejected, attempted - accepted);
  long long total_support = 0;
  for (long long c : snapshot.counts) {
    EXPECT_GE(c, 0);
    total_support += c;
  }
  if (GetParam() == fo::Protocol::kGrr) {
    // Every accepted GRR report supports exactly one value.
    EXPECT_EQ(total_support, accepted);
  }
}

// The wire decoder is strict: the zero padding of the final byte must be
// zero, so every accepted buffer is exactly one SerializeReport image.
TEST_P(ServeCollectorTest, NonzeroPaddingIsRejected) {
  const int k = 23;  // GRR: 5 bits + 3 padding; UE: 23 bits + 1 padding
  auto oracle = fo::MakeOracle(GetParam(), k, 1.0);
  fo::WireDecoder decoder(*oracle);
  const int padding = static_cast<int>(decoder.report_bytes()) * 8 -
                      decoder.report_bits();
  if (padding == 0) GTEST_SKIP() << "no padding at this (protocol, k)";
  Rng rng(5);
  std::vector<std::uint8_t> frame =
      fo::SerializeReport(*oracle, oracle->Randomize(3, rng));
  auto agg = oracle->MakeAggregator();
  EXPECT_TRUE(decoder.DecodeInto(frame, *agg));
  frame.back() |= 1;  // lowest bit is always padding when padding > 0
  EXPECT_FALSE(decoder.DecodeInto(frame, *agg));
  EXPECT_EQ(agg->n(), 1);
}

// Mid-epoch flush boundaries are invisible: a lane stages frames and
// flushes a block every bitslice::kBlockRows (observable via staged()), and
// sealing at any fill — empty, exactly full, or one past a flush — yields a
// snapshot bit-identical to the batch aggregator over the same reports.
TEST_P(ServeCollectorTest, FlushBoundariesAreInvisibleInSnapshots) {
  const int k = 12;
  const int block = fo::bitslice::kBlockRows;
  const int max_n = 2 * block + 1;
  auto oracle = fo::MakeOracle(GetParam(), k, 1.0);

  Rng rng(77);
  std::vector<fo::Report> reports;
  std::vector<std::vector<std::uint8_t>> frames;
  for (int i = 0; i < max_n; ++i) {
    reports.push_back(oracle->Randomize(i % k, rng));
    frames.push_back(fo::SerializeReport(*oracle, reports.back()));
  }

  EpochManager manager(*oracle, CollectorOptions{.lanes = 1});
  for (int n : {0, 1, block - 1, block, block + 1, 2 * block - 1, 2 * block,
                max_n}) {
    manager.OpenEpoch();
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(manager.collector().Ingest({frames[i]}).accepted);
    }
    // Whole blocks were flushed eagerly; the remainder is still staged and
    // only decoded at seal.
    EXPECT_EQ(manager.collector().staged(0), n % block) << "n=" << n;
    const EstimateSnapshot& snapshot = manager.Seal();

    auto batch = oracle->MakeAggregator();
    for (int i = 0; i < n; ++i) batch->Accumulate(reports[i]);
    EXPECT_EQ(snapshot.n, n);
    EXPECT_EQ(snapshot.counts, batch->counts()) << "n=" << n;
    if (n > 0) {
      EXPECT_EQ(snapshot.frequencies, batch->Estimate()) << "n=" << n;
    } else {
      EXPECT_TRUE(snapshot.frequencies.empty());
    }
  }
}

// Sealing flushes a partial block at EVERY prefix length: sweep all staged
// fills 0..kBlockRows and check each sealed snapshot against an
// incrementally grown batch reference.
TEST_P(ServeCollectorTest, SealAtEveryStagedFillMatchesScalar) {
  const int k = 9;
  const int block = fo::bitslice::kBlockRows;
  auto oracle = fo::MakeOracle(GetParam(), k, 1.2);

  Rng rng(501);
  std::vector<fo::Report> reports;
  std::vector<std::vector<std::uint8_t>> frames;
  for (int i = 0; i <= block; ++i) {
    reports.push_back(oracle->Randomize((i * 5 + 2) % k, rng));
    frames.push_back(fo::SerializeReport(*oracle, reports.back()));
  }

  EpochManager manager(*oracle, CollectorOptions{.lanes = 1});
  auto batch = oracle->MakeAggregator();  // grown by one report per fill
  for (int n = 0; n <= block; ++n) {
    if (n > 0) batch->Accumulate(reports[n - 1]);
    manager.OpenEpoch();
    for (int i = 0; i < n; ++i) {
      ASSERT_TRUE(manager.collector().Ingest({frames[i]}).accepted);
    }
    const EstimateSnapshot& snapshot = manager.Seal();
    ASSERT_EQ(snapshot.counts, batch->counts()) << "staged fill " << n;
    ASSERT_EQ(snapshot.n, n);
  }
}

// Fuzz the staging path itself: interleave valid frames with corrupt /
// truncated / random buffers and padding violations, so rejects land
// between staged rows at every fill level. The collector's accept verdicts
// must match WireDecoder::DecodeInto frame by frame, and the sealed counts
// must match the reference aggregator the decoder built along the way.
// (Runs under the ASan/UBSan fast label.)
TEST_P(ServeCollectorTest, RejectionsBetweenStagedFramesDontPerturbDecodes) {
  const int k = 50;
  auto oracle = fo::MakeOracle(GetParam(), k, 1.0);
  EpochManager manager(*oracle, CollectorOptions{.lanes = 1});
  manager.OpenEpoch();
  Collector& collector = manager.collector();
  const std::size_t frame_bytes = collector.report_bytes();

  fo::WireDecoder reference_decoder(*oracle);
  auto reference = oracle->MakeAggregator();
  Rng rng(9001);
  long long accepted = 0;

  for (int trial = 0; trial < 2000; ++trial) {
    std::vector<std::uint8_t> buffer;
    switch (trial % 4) {
      case 0:  // genuine frame
        buffer = fo::SerializeReport(
            *oracle,
            oracle->Randomize(static_cast<int>(rng.UniformInt(k)), rng));
        break;
      case 1: {  // genuine frame with one flipped bit
        buffer = fo::SerializeReport(
            *oracle,
            oracle->Randomize(static_cast<int>(rng.UniformInt(k)), rng));
        buffer[rng.UniformInt(buffer.size())] ^=
            static_cast<std::uint8_t>(1u << rng.UniformInt(8));
        break;
      }
      case 2: {  // random bytes at the exact accepted size
        buffer.resize(frame_bytes);
        for (auto& b : buffer) {
          b = static_cast<std::uint8_t>(rng.UniformInt(256));
        }
        break;
      }
      default: {  // random bytes at a random (usually wrong) size
        buffer.resize(rng.UniformInt(2 * frame_bytes + 2));
        for (auto& b : buffer) {
          b = static_cast<std::uint8_t>(rng.UniformInt(256));
        }
        break;
      }
    }
    const bool reference_accepts =
        reference_decoder.DecodeInto(buffer, *reference);
    EXPECT_EQ(collector.Ingest({buffer}).accepted, reference_accepts)
        << "trial " << trial;
    accepted += reference_accepts ? 1 : 0;
  }

  const EstimateSnapshot& snapshot = manager.Seal();
  EXPECT_EQ(snapshot.n, accepted);
  EXPECT_EQ(snapshot.counts, reference->counts());
  EXPECT_EQ(snapshot.stats.rejected, 2000 - accepted);
}

// Concurrent-producer stress: real std::threads hammer the collector both
// ways producers can be deployed — pinned to disjoint lanes (the scaling
// configuration: zero contention) and all sharing a smaller lane set (the
// degenerate configuration: heavy mutex contention, interleaved staging and
// block flushes). Either way the sealed snapshot must be bit-identical to a
// single-thread ingest of the same stream: snapshots depend only on the
// multiset of accepted reports.
TEST_P(ServeCollectorTest, ConcurrentProducersMatchSingleThreadBitwise) {
  const int k = 19;
  const int n = 6000;  // not a multiple of kBlockRows or the thread count
  const int threads = 4;
  auto oracle = fo::MakeOracle(GetParam(), k, 1.5);
  Rng rng(314);
  Rng root(27);
  const EncodedStream stream =
      EncodeScalarLoad(*oracle, ZipfValues(n, k, rng), root);

  // Reference: one lane, one thread, in stream order.
  EstimateSnapshot reference;
  {
    EpochManager manager(*oracle, CollectorOptions{.lanes = 1});
    manager.OpenEpoch();
    for (long long i = 0; i < n; ++i) {
      ASSERT_TRUE(manager.collector()
                      .Ingest({{stream.frame(i), stream.frame_bytes}})
                      .accepted);
    }
    reference = manager.Seal();
  }

  const auto expect_matches_reference = [&](const EstimateSnapshot& snapshot,
                                            const char* config) {
    EXPECT_EQ(snapshot.n, reference.n) << config;
    EXPECT_EQ(snapshot.counts, reference.counts) << config;
    EXPECT_EQ(snapshot.frequencies, reference.frequencies) << config;
    EXPECT_EQ(snapshot.consistent, reference.consistent) << config;
    EXPECT_EQ(snapshot.stats.reports, reference.stats.reports) << config;
    EXPECT_EQ(snapshot.stats.rejected, 0) << config;
  };

  // Disjoint lanes: thread t owns lane t and a contiguous frame range.
  {
    EpochManager manager(*oracle, CollectorOptions{.lanes = threads});
    manager.OpenEpoch();
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        const long long lo = n * static_cast<long long>(t) / threads;
        const long long hi = n * static_cast<long long>(t + 1) / threads;
        for (long long i = lo; i < hi; ++i) {
          manager.collector().Ingest(
              {{stream.frame(i), stream.frame_bytes}, std::nullopt, t});
        }
      });
    }
    for (std::thread& w : workers) w.join();
    expect_matches_reference(manager.Seal(), "disjoint lanes");
  }

  // Shared lanes: four threads contend for two lanes, strided so every
  // thread's frames interleave with every other's inside each lane.
  {
    EpochManager manager(*oracle, CollectorOptions{.lanes = 2});
    manager.OpenEpoch();
    std::vector<std::thread> workers;
    for (int t = 0; t < threads; ++t) {
      workers.emplace_back([&, t] {
        for (long long i = t; i < n; i += threads) {
          manager.collector().Ingest({{stream.frame(i), stream.frame_bytes},
                                      std::nullopt,
                                      static_cast<int>(i % 2)});
        }
      });
    }
    for (std::thread& w : workers) w.join();
    expect_matches_reference(manager.Seal(), "shared lanes");
  }

  // The timed harness the MT benchmarks and serve-demo use reports every
  // frame accepted and seals to the same snapshot.
  {
    EpochManager manager(*oracle, CollectorOptions{.lanes = threads});
    manager.OpenEpoch();
    const MtIngestResult result =
        IngestStreamMt(manager.collector(), stream, threads);
    EXPECT_EQ(result.accepted, n);
    EXPECT_GE(result.reports_per_second, 0.0);
    expect_matches_reference(manager.Seal(), "IngestStreamMt");
  }
}

TEST(ServeEpochTest, LifecycleIsEnforced) {
  auto oracle = fo::MakeOracle(fo::Protocol::kOue, 8, 1.0);
  EpochManager manager(*oracle, CollectorOptions{.lanes = 2});
  EXPECT_FALSE(manager.open());
  EXPECT_THROW(manager.collector(), InvalidArgumentError);
  EXPECT_THROW(manager.Seal(), InvalidArgumentError);

  EXPECT_EQ(manager.OpenEpoch(), 0);
  EXPECT_TRUE(manager.open());
  EXPECT_THROW(manager.OpenEpoch(), InvalidArgumentError);

  Rng rng(3);
  for (int i = 0; i < 10; ++i) {
    const auto frame =
        fo::SerializeReport(*oracle, oracle->Randomize(i % 8, rng));
    EXPECT_TRUE(manager.collector().Ingest({frame, std::nullopt, i}).accepted);
  }
  const EstimateSnapshot& first = manager.Seal();
  EXPECT_EQ(first.epoch, 0);
  EXPECT_EQ(first.n, 10);
  EXPECT_FALSE(manager.open());

  // The next epoch starts from zero: sealing resets the lanes.
  EXPECT_EQ(manager.OpenEpoch(), 1);
  const EstimateSnapshot& second = manager.Seal();
  EXPECT_EQ(second.epoch, 1);
  EXPECT_EQ(second.n, 0);
  EXPECT_TRUE(second.frequencies.empty());
  ASSERT_EQ(manager.snapshots().size(), 2u);
  EXPECT_EQ(manager.snapshots()[0].n, 10);
}

// The closed-form lane feed (fast simulation profile) tallies reports and
// synthetic bytes like wire ingest does.
TEST(ServeEpochTest, HistogramIngestCountsReports) {
  auto oracle = fo::MakeOracle(fo::Protocol::kGrr, 6, 1.0);
  EpochManager manager(*oracle, CollectorOptions{.lanes = 2});
  manager.OpenEpoch();
  Rng rng(11);
  const std::vector<long long> histogram = {100, 50, 25, 12, 6, 7};
  manager.collector().IngestHistogram(0, histogram, rng);
  manager.collector().IngestHistogram(1, histogram, rng);
  const EstimateSnapshot& snapshot = manager.Seal();
  EXPECT_EQ(snapshot.n, 400);
  EXPECT_EQ(snapshot.stats.reports, 400);
  EXPECT_EQ(snapshot.stats.bytes,
            400 * static_cast<long long>(manager.report_bytes()));
  long long total = 0;
  for (long long c : snapshot.counts) total += c;
  EXPECT_EQ(total, 400);  // GRR closed form is sum-preserving
}

}  // namespace
}  // namespace ldpr::serve
