// Load generator (serve/loadgen): wire traffic must be byte-identical under
// any producer thread count, the full loadgen -> collector -> seal round
// trip must recover the population's frequencies, and the multidim streams
// must ingest losslessly.

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "core/sampling.h"
#include "data/synthetic.h"
#include "fo/factory.h"
#include "serve/loadgen.h"

namespace ldpr::serve {
namespace {

TEST(ServeLoadGenTest, ScalarStreamIsThreadCountIndependent) {
  const int k = 40;
  auto oracle = fo::MakeOracle(fo::Protocol::kSs, k, 1.2);
  Rng vrng(2);
  CategoricalSampler sampler(ZipfDistribution(k, 1.3));
  std::vector<int> values(3000);
  for (int& v : values) v = sampler.Sample(vrng);

  EncodedStream reference;
  for (int threads : {1, 2, 5}) {
    sim::Options options;
    options.threads = threads;
    Rng root(123);
    EncodedStream stream = EncodeScalarLoad(*oracle, values, root, options);
    EXPECT_EQ(stream.count, 3000);
    EXPECT_EQ(stream.bytes.size(), 3000 * stream.frame_bytes);
    if (threads == 1) {
      reference = std::move(stream);
      continue;
    }
    EXPECT_EQ(stream.bytes, reference.bytes) << "threads=" << threads;
  }
}

TEST(ServeLoadGenTest, MultidimFramesAreThreadCountIndependent) {
  const data::Dataset ds = data::NurseryLike(3, 0.02);
  multidim::RsFd rsfd(multidim::RsFdVariant::kGrr, ds.domain_sizes(), 2.0);
  EncodedFrames reference;
  for (int threads : {1, 3}) {
    sim::Options options;
    options.threads = threads;
    Rng root(55);
    EncodedFrames frames = EncodeRsFdLoad(rsfd, ds, root, options);
    EXPECT_EQ(frames.count(), ds.n());
    if (threads == 1) {
      reference = std::move(frames);
      continue;
    }
    EXPECT_EQ(frames.bytes, reference.bytes);
    EXPECT_EQ(frames.offsets, reference.offsets);
  }
}

// End to end at a generous budget: loadgen traffic sealed by the collector
// recovers the true frequencies.
TEST(ServeLoadGenTest, RoundTripRecoversFrequencies) {
  const int k = 12;
  const int n = 30000;
  auto oracle = fo::MakeOracle(fo::Protocol::kOue, k, 4.0);
  Rng vrng(8);
  const std::vector<double> truth = ZipfDistribution(k, 1.5);
  CategoricalSampler sampler(truth);
  std::vector<int> values(n);
  std::vector<long long> histogram(k, 0);
  for (int& v : values) {
    v = sampler.Sample(vrng);
    ++histogram[v];
  }

  Rng root(21);
  const EncodedStream stream = EncodeScalarLoad(*oracle, values, root);
  EpochManager manager(*oracle, CollectorOptions{.lanes = 3});
  manager.OpenEpoch();
  EXPECT_EQ(IngestStream(manager.collector(), stream, 2), n);
  const EstimateSnapshot& snapshot = manager.Seal();
  ASSERT_EQ(static_cast<int>(snapshot.frequencies.size()), k);
  for (int v = 0; v < k; ++v) {
    const double empirical = static_cast<double>(histogram[v]) / n;
    EXPECT_NEAR(snapshot.frequencies[v], empirical, 0.02) << "value " << v;
  }
}

TEST(ServeLoadGenTest, MultidimRoundTripIngestsEveryFrame) {
  const data::Dataset ds = data::NurseryLike(5, 0.05);  // n = 647
  multidim::Smp smp(fo::Protocol::kGrr, ds.domain_sizes(), 3.0);
  Rng root(17);
  const EncodedFrames frames = EncodeSmpLoad(smp, ds, root);
  MultidimCollector collector(smp, CollectorOptions{.lanes = 2});
  EXPECT_EQ(IngestFrames(collector, frames, 2), ds.n());
  const MultidimSnapshot snapshot = collector.Seal();
  EXPECT_EQ(snapshot.n, ds.n());
  EXPECT_EQ(snapshot.stats.rejected, 0);
  EXPECT_EQ(snapshot.stats.bytes,
            static_cast<long long>(frames.bytes.size()));
  ASSERT_EQ(static_cast<int>(snapshot.estimates.size()), ds.d());
}

}  // namespace
}  // namespace ldpr::serve
