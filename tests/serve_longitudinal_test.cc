// Longitudinal serving pipeline (serve/longitudinal): window seals on the
// sliding/overlapping schedules must be bit-identical to a batch aggregator
// fed the union of the member epochs' reports (the delta path may not
// drift), memoized replays must be charged eps = 0 with the cumulative
// budget sublinear in the number of epochs (and exactly linear with
// memoization off), ledger totals must be exact under any lane/thread
// configuration, and the bounded history cap must evict oldest-first.

#include <cmath>
#include <cstdint>
#include <deque>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "core/check.h"
#include "core/sampling.h"
#include "data/longitudinal.h"
#include "fo/bitslice.h"
#include "fo/factory.h"
#include "fo/wire.h"
#include "serve/loadgen.h"
#include "serve/longitudinal.h"

namespace ldpr::serve {
namespace {

std::vector<int> ZipfValues(int n, int k, Rng& rng) {
  CategoricalSampler sampler(ZipfDistribution(k, 1.1));
  std::vector<int> values(n);
  for (int& v : values) v = sampler.Sample(rng);
  return values;
}

// ---------------------------------------------------------------------------
// EpochSchedule arithmetic
// ---------------------------------------------------------------------------

TEST(EpochScheduleTest, FixedWindowsTumble) {
  const EpochSchedule schedule = EpochSchedule::Fixed(3);
  EXPECT_EQ(schedule.kind(), WindowKind::kFixed);
  EXPECT_EQ(schedule.length(), 3);
  EXPECT_EQ(schedule.stride(), 3);
  // Windows [0..2], [3..5], ...: one completes every third epoch.
  EXPECT_EQ(schedule.CompletedWindow(0), -1);
  EXPECT_EQ(schedule.CompletedWindow(1), -1);
  EXPECT_EQ(schedule.CompletedWindow(2), 0);
  EXPECT_EQ(schedule.CompletedWindow(3), -1);
  EXPECT_EQ(schedule.CompletedWindow(5), 1);
  EXPECT_EQ(schedule.CompletedWindow(8), 2);
  EXPECT_EQ(schedule.FirstEpoch(2), 6);
  EXPECT_EQ(schedule.LastEpoch(2), 8);
}

TEST(EpochScheduleTest, SlidingWindowsAdvanceEveryEpoch) {
  const EpochSchedule schedule = EpochSchedule::Sliding(4);
  EXPECT_EQ(schedule.kind(), WindowKind::kSliding);
  for (long long e = 0; e < 3; ++e) {
    EXPECT_EQ(schedule.CompletedWindow(e), -1) << "epoch " << e;
  }
  for (long long e = 3; e < 20; ++e) {
    const long long w = schedule.CompletedWindow(e);
    EXPECT_EQ(w, e - 3);
    EXPECT_EQ(schedule.FirstEpoch(w), e - 3);
    EXPECT_EQ(schedule.LastEpoch(w), e);
  }
}

TEST(EpochScheduleTest, OverlappingWindowsAdvanceByStride) {
  const EpochSchedule schedule = EpochSchedule::Overlapping(4, 2);
  EXPECT_EQ(schedule.kind(), WindowKind::kOverlapping);
  // Windows [0..3], [2..5], [4..7], ...: completions at 3, 5, 7, ...
  EXPECT_EQ(schedule.CompletedWindow(3), 0);
  EXPECT_EQ(schedule.CompletedWindow(4), -1);
  EXPECT_EQ(schedule.CompletedWindow(5), 1);
  EXPECT_EQ(schedule.CompletedWindow(7), 2);
  EXPECT_EQ(schedule.FirstEpoch(1), 2);
  EXPECT_EQ(schedule.LastEpoch(1), 5);
}

TEST(EpochScheduleTest, ParseAcceptsTheDemoSpecs) {
  EXPECT_EQ(ParseEpochSchedule("fixed").length(), 1);
  EXPECT_EQ(ParseEpochSchedule("fixed:5").stride(), 5);
  EXPECT_EQ(ParseEpochSchedule("sliding:3").kind(), WindowKind::kSliding);
  EXPECT_EQ(ParseEpochSchedule("overlap:4:2").stride(), 2);
  EXPECT_EQ(ParseEpochSchedule("overlapping:4:2").length(), 4);
}

TEST(EpochScheduleTest, ParseRejectsMalformedSpecs) {
  EXPECT_THROW(ParseEpochSchedule(""), InvalidArgumentError);
  EXPECT_THROW(ParseEpochSchedule("bogus"), InvalidArgumentError);
  EXPECT_THROW(ParseEpochSchedule("sliding"), InvalidArgumentError);
  EXPECT_THROW(ParseEpochSchedule("sliding:0"), InvalidArgumentError);
  EXPECT_THROW(ParseEpochSchedule("fixed:x"), InvalidArgumentError);
  EXPECT_THROW(ParseEpochSchedule("overlap:4"), InvalidArgumentError);
  // stride > length is not a window sequence.
  EXPECT_THROW(ParseEpochSchedule("overlap:2:3"), InvalidArgumentError);
}

// ---------------------------------------------------------------------------
// Window seals vs from-scratch recompute
// ---------------------------------------------------------------------------

class ServeLongitudinalTest : public ::testing::TestWithParam<fo::Protocol> {
};

INSTANTIATE_TEST_SUITE_P(AllProtocols, ServeLongitudinalTest,
                         ::testing::ValuesIn(fo::AllProtocols()),
                         [](const auto& info) {
                           return std::string(fo::ProtocolName(info.param));
                         });

// Acceptance: the running-delta window estimate equals a batch aggregator
// fed the union of the member epochs' wire frames, bitwise — sliding and
// overlapping schedules alike.
TEST_P(ServeLongitudinalTest, WindowSealsBitIdenticalToBatchRecompute) {
  const int k = 19;
  const int n = 400;
  const int epochs = 7;
  auto oracle = fo::MakeOracle(GetParam(), k, 1.5);

  for (const EpochSchedule& schedule :
       {EpochSchedule::Sliding(3), EpochSchedule::Overlapping(4, 2)}) {
    LongitudinalOptions options;
    options.schedule = schedule;
    options.collector.lanes = 3;
    LongitudinalCollector collector(*oracle, options);

    Rng rng(301);
    std::vector<EncodedStream> streams;
    for (int e = 0; e < epochs; ++e) {
      Rng root = rng.Split();
      const EncodedStream stream =
          EncodeScalarLoad(*oracle, ZipfValues(n, k, rng), root);
      collector.OpenEpoch();
      EXPECT_EQ(IngestStreamUsers(collector, stream), n);
      collector.Seal();
      streams.push_back(stream);
    }

    ASSERT_FALSE(collector.windows().empty());
    for (const WindowSnapshot& window : collector.windows()) {
      // From-scratch reference: decode every member epoch's frames into one
      // batch aggregator.
      auto batch = oracle->MakeAggregator();
      for (long long e = window.first_epoch; e <= window.last_epoch; ++e) {
        const EncodedStream& stream = streams[static_cast<std::size_t>(e)];
        for (long long i = 0; i < stream.count; ++i) {
          batch->Accumulate(fo::DeserializeReport(
              *oracle, std::vector<std::uint8_t>(
                           stream.frame(i),
                           stream.frame(i) + stream.frame_bytes)));
        }
      }
      EXPECT_EQ(window.n, batch->n());
      EXPECT_EQ(window.counts, batch->counts());
      EXPECT_EQ(window.frequencies, batch->Estimate());
      EXPECT_EQ(window.consistent,
                batch->Estimate(fo::ConsistencyMethod::kNormSub));
      EXPECT_EQ(window.last_epoch - window.first_epoch + 1,
                schedule.length());
    }
  }
}

// Memoized replays ride the same staged-ingest path as fresh frames: with a
// sliding window over epochs whose sizes straddle the block-flush boundary
// (n = kBlockRows + 2), every window seal and every ledger figure must be
// identical whatever the lane count — replayed frames decode through
// AccumulateWireBlock exactly like first-time frames.
TEST_P(ServeLongitudinalTest, MemoizedReplayWindowsAreLaneAndFlushInvariant) {
  const int k = 13;
  const int n = fo::bitslice::kBlockRows + 2;
  const int epochs = 6;
  auto oracle = fo::MakeOracle(GetParam(), k, 1.5);

  // One fixed traffic trace: a memoizing population re-reporting mostly
  // static values (every round after the first is mostly verbatim replays).
  Rng seed_rng(611);
  std::vector<int> values = ZipfValues(n, k, seed_rng);
  LongitudinalClients clients(*oracle, n, /*memoize=*/true);
  Rng root(612);
  std::vector<EncodedStream> streams;
  for (int e = 0; e < epochs; ++e) {
    if (e == 3) values[5] = (values[5] + 1) % k;  // a little churn
    streams.push_back(clients.EncodeRound(values, root));
  }

  std::deque<WindowSnapshot> reference;
  for (int lanes : {1, 2, 5}) {
    LongitudinalOptions options;
    options.schedule = EpochSchedule::Sliding(3);
    options.collector.lanes = lanes;
    LongitudinalCollector collector(*oracle, options);
    for (const EncodedStream& stream : streams) {
      collector.OpenEpoch();
      EXPECT_EQ(IngestStreamUsers(collector, stream), n);
      collector.Seal();
    }
    ASSERT_FALSE(collector.windows().empty());
    if (lanes == 1) {
      reference = collector.windows();
      continue;
    }
    ASSERT_EQ(collector.windows().size(), reference.size());
    for (std::size_t w = 0; w < reference.size(); ++w) {
      const WindowSnapshot& got = collector.windows()[w];
      const WindowSnapshot& want = reference[w];
      EXPECT_EQ(got.counts, want.counts) << "lanes=" << lanes << " w=" << w;
      EXPECT_EQ(got.frequencies, want.frequencies);
      EXPECT_EQ(got.consistent, want.consistent);
      EXPECT_EQ(got.n, want.n);
    }
    // Replay classification is staged-path independent too.
    for (std::size_t e = 0; e < collector.snapshots().size(); ++e) {
      EXPECT_EQ(collector.snapshots()[e].ledger.fresh,
                e == 0 ? n : (e == 3 ? 1 : 0))
          << "lanes=" << lanes << " epoch=" << e;
    }
  }
}

// ---------------------------------------------------------------------------
// Ledger semantics
// ---------------------------------------------------------------------------

// Memoization on, static values: only epoch 0 is charged. The cumulative
// budget is n*eps forever (sublinear in the number of epochs) while every
// epoch still contributes n reports to the estimate.
TEST_P(ServeLongitudinalTest, StaticPopulationBudgetIsFlatAfterEpochZero) {
  const int k = 16;
  const int n = 300;
  const int epochs = 5;
  const double eps = 1.25;
  auto oracle = fo::MakeOracle(GetParam(), k, eps);

  LongitudinalCollector collector(*oracle, {});
  LongitudinalClients clients(*oracle, n, /*memoize=*/true);
  Rng seed_rng(88);
  const std::vector<int> values = ZipfValues(n, k, seed_rng);
  Rng root(89);

  for (int e = 0; e < epochs; ++e) {
    collector.OpenEpoch();
    EXPECT_EQ(IngestStreamUsers(collector, clients.EncodeRound(values, root)),
              n);
    const EstimateSnapshot& sealed = collector.Seal();

    EXPECT_EQ(sealed.n, n) << "replays still count toward the estimate";
    if (e == 0) {
      EXPECT_EQ(sealed.ledger.fresh, n);
      EXPECT_EQ(sealed.ledger.memoized, 0);
    } else {
      EXPECT_EQ(sealed.ledger.fresh, 0) << "epoch " << e;
      EXPECT_EQ(sealed.ledger.memoized, n);
      EXPECT_DOUBLE_EQ(sealed.ledger.total_epsilon, 0.0);
    }
    // Cumulative: only the n permanent answers are ever charged.
    EXPECT_DOUBLE_EQ(sealed.cumulative_ledger.total_epsilon,
                     static_cast<double>(n) * eps);
    EXPECT_DOUBLE_EQ(sealed.cumulative_ledger.worst_attribute_epsilon,
                     static_cast<double>(n) * eps);
    EXPECT_EQ(sealed.cumulative_ledger.users, n);
    EXPECT_DOUBLE_EQ(sealed.cumulative_ledger.mean_user_epsilon, eps);
    EXPECT_DOUBLE_EQ(sealed.cumulative_ledger.max_user_epsilon, eps);
    EXPECT_DOUBLE_EQ(
        sealed.cumulative_ledger.MemoizationHitRate(),
        static_cast<double>(e) / static_cast<double>(e + 1));
  }
  // Client- and server-side classification agree exactly.
  EXPECT_EQ(clients.fresh_randomizations(), n);
  EXPECT_EQ(clients.memoized_replays(),
            static_cast<long long>(epochs - 1) * n);
}

// Memoization off: every round is a fresh randomization and the budget is
// exactly linear — including for low-entropy GRR frames where chance
// collisions would otherwise be mis-credited as replays.
TEST_P(ServeLongitudinalTest, NoMemoizationBudgetIsExactlyLinear) {
  const int k = 16;
  const int n = 300;
  const int epochs = 5;
  const double eps = 1.25;
  auto oracle = fo::MakeOracle(GetParam(), k, eps);

  LongitudinalOptions options;
  options.memoized_replays_free = false;
  LongitudinalCollector collector(*oracle, options);
  LongitudinalClients clients(*oracle, n, /*memoize=*/false);
  Rng seed_rng(88);
  const std::vector<int> values = ZipfValues(n, k, seed_rng);
  Rng root(89);

  for (int e = 0; e < epochs; ++e) {
    collector.OpenEpoch();
    EXPECT_EQ(IngestStreamUsers(collector, clients.EncodeRound(values, root)),
              n);
    const EstimateSnapshot& sealed = collector.Seal();
    EXPECT_EQ(sealed.ledger.fresh, n);
    EXPECT_EQ(sealed.ledger.memoized, 0);
    EXPECT_DOUBLE_EQ(sealed.cumulative_ledger.total_epsilon,
                     static_cast<double>(e + 1) * n * eps);
    EXPECT_DOUBLE_EQ(sealed.cumulative_ledger.MemoizationHitRate(), 0.0);
    EXPECT_DOUBLE_EQ(sealed.cumulative_ledger.mean_user_epsilon,
                     static_cast<double>(e + 1) * eps);
    EXPECT_DOUBLE_EQ(sealed.cumulative_ledger.max_user_epsilon,
                     static_cast<double>(e + 1) * eps);
  }
  EXPECT_EQ(clients.fresh_randomizations(),
            static_cast<long long>(epochs) * n);
  EXPECT_EQ(clients.memoized_replays(), 0);
}

// A value change breaks the permanent answer: the client randomizes fresh
// and the server's classification charges it. Client- and server-side
// tallies agree per epoch under churn.
TEST(ServeLongitudinalLedgerTest, ValueChangesAreChargedFresh) {
  const int k = 32;
  const int n = 500;
  const double eps = 1.0;
  auto oracle = fo::MakeOracle(fo::Protocol::kOue, k, eps);

  data::LongitudinalConfig config;
  config.rounds = 6;
  config.change_probability = 0.3;
  config.drift = data::DriftKind::kStationary;
  config.seed = 505;
  const std::vector<std::vector<int>> rounds =
      data::GenerateScalarRounds(ZipfDistribution(k, 1.1), n, config);

  LongitudinalCollector collector(*oracle, {});
  LongitudinalClients clients(*oracle, n, /*memoize=*/true);
  Rng root(506);
  long long client_fresh_before = 0;
  for (const std::vector<int>& values : rounds) {
    // Expected fresh this round: users whose value has no cached permanent
    // answer yet (the client memoizes per distinct value ever reported).
    collector.OpenEpoch();
    IngestStreamUsers(collector, clients.EncodeRound(values, root));
    const EstimateSnapshot& sealed = collector.Seal();
    const long long client_fresh =
        clients.fresh_randomizations() - client_fresh_before;
    client_fresh_before = clients.fresh_randomizations();
    EXPECT_EQ(sealed.ledger.fresh, client_fresh);
    EXPECT_EQ(sealed.ledger.memoized, n - client_fresh);
    EXPECT_DOUBLE_EQ(sealed.ledger.total_epsilon,
                     static_cast<double>(client_fresh) * eps);
  }
  // Churn happened: the budget actually sits between the two extremes.
  const long long total_fresh = clients.fresh_randomizations();
  EXPECT_GT(total_fresh, n);
  EXPECT_LT(total_fresh, static_cast<long long>(config.rounds) * n);
}

// Ledger totals and estimates are exact under any lane count and producer
// thread count (integer tallies, bulk conversion at seal).
TEST(ServeLongitudinalLedgerTest, LedgerIsLaneAndThreadCountIndependent) {
  const int k = 24;
  const int n = 2000;
  auto oracle = fo::MakeOracle(fo::Protocol::kGrr, k, 2.0);

  data::LongitudinalConfig config;
  config.rounds = 4;
  config.change_probability = 0.2;
  config.drift = data::DriftKind::kStationary;
  config.seed = 606;
  const std::vector<std::vector<int>> rounds =
      data::GenerateScalarRounds(ZipfDistribution(k, 1.1), n, config);

  privacy::LedgerReport reference;
  EstimateSnapshot reference_snapshot;
  bool have_reference = false;
  for (const auto& [lanes, threads] :
       std::vector<std::pair<int, int>>{{1, 1}, {3, 2}, {8, 4}}) {
    LongitudinalOptions options;
    options.collector.lanes = lanes;
    LongitudinalCollector collector(*oracle, options);
    // Same root seed per configuration: the client traffic is byte-identical
    // under any thread count (sim::ShardedRun).
    LongitudinalClients clients(*oracle, n, /*memoize=*/true);
    Rng root(607);
    sim::Options encode_options;
    encode_options.threads = threads;
    const EstimateSnapshot* sealed = nullptr;
    for (const std::vector<int>& values : rounds) {
      collector.OpenEpoch();
      IngestStreamUsers(collector,
                        clients.EncodeRound(values, root, encode_options),
                        /*first_user=*/0, threads);
      sealed = &collector.Seal();
    }
    ASSERT_NE(sealed, nullptr);
    if (!have_reference) {
      reference = sealed->cumulative_ledger;
      reference_snapshot = *sealed;
      have_reference = true;
      continue;
    }
    EXPECT_EQ(sealed->cumulative_ledger.fresh, reference.fresh)
        << "lanes=" << lanes << " threads=" << threads;
    EXPECT_EQ(sealed->cumulative_ledger.memoized, reference.memoized);
    EXPECT_EQ(sealed->cumulative_ledger.users, reference.users);
    EXPECT_EQ(sealed->cumulative_ledger.total_epsilon,
              reference.total_epsilon);
    EXPECT_EQ(sealed->cumulative_ledger.mean_user_epsilon,
              reference.mean_user_epsilon);
    EXPECT_EQ(sealed->cumulative_ledger.max_user_epsilon,
              reference.max_user_epsilon);
    EXPECT_EQ(sealed->counts, reference_snapshot.counts);
    EXPECT_EQ(sealed->frequencies, reference_snapshot.frequencies);
  }
}

// Reports ingested without a user id (the direct collector() path, e.g. the
// fast-profile histogram feed) are charged as fresh randomizations.
TEST(ServeLongitudinalLedgerTest, AnonymousIngestIsChargedFresh) {
  const double eps = 0.75;
  auto oracle = fo::MakeOracle(fo::Protocol::kGrr, 8, eps);
  LongitudinalCollector collector(*oracle, {});
  collector.OpenEpoch();
  Rng rng(9);
  const std::vector<long long> histogram = {40, 20, 10, 5, 5, 5, 5, 10};
  collector.collector().IngestHistogram(0, histogram, rng);
  const EstimateSnapshot& sealed = collector.Seal();
  EXPECT_EQ(sealed.ledger.fresh, 100);
  EXPECT_EQ(sealed.ledger.memoized, 0);
  EXPECT_DOUBLE_EQ(sealed.ledger.total_epsilon, 100.0 * eps);
  // No users were tracked, so per-user fields stay empty.
  EXPECT_EQ(sealed.cumulative_ledger.users, 0);
  EXPECT_DOUBLE_EQ(sealed.cumulative_ledger.mean_user_epsilon, 0.0);
}

TEST(ServeLongitudinalLedgerTest, IngestOutsideAnEpochIsAClosedEpochReject) {
  auto oracle = fo::MakeOracle(fo::Protocol::kGrr, 8, 1.0);
  LongitudinalCollector collector(*oracle, {});
  Rng rng(3);
  const auto frame =
      fo::SerializeReport(*oracle, oracle->Randomize(2, rng));
  // A report arriving between epochs is a counted reject, not an error:
  // socket transports keep draining while the pipeline rolls epochs.
  const IngestResult between = collector.Ingest({frame, 0});
  EXPECT_FALSE(between.accepted);
  EXPECT_EQ(between.reason, RejectReason::kClosedEpoch);
  collector.OpenEpoch();
  EXPECT_TRUE(collector.Ingest({frame, 0}).accepted);
  // Malformed frames are rejected, not classified.
  std::vector<std::uint8_t> truncated(frame.begin(), frame.end());
  truncated.pop_back();
  const IngestResult malformed = collector.Ingest({truncated, 0});
  EXPECT_FALSE(malformed.accepted);
  EXPECT_EQ(malformed.reason, RejectReason::kMalformed);
  const EstimateSnapshot& sealed = collector.Seal();
  EXPECT_EQ(sealed.ledger.fresh, 1);
  EXPECT_EQ(sealed.stats.rejected, 1);
  // The between-epochs reject folds into the first seal after it happened.
  EXPECT_EQ(sealed.stats.closed_epoch, 1);
}

// ---------------------------------------------------------------------------
// Snapshot deltas and bounded history
// ---------------------------------------------------------------------------

TEST(ServeLongitudinalTestDeltas, DiffSnapshotsIsExact) {
  const int k = 12;
  auto oracle = fo::MakeOracle(fo::Protocol::kGrr, k, 1.0);
  LongitudinalCollector collector(*oracle, {});
  Rng rng(77);
  for (int e = 0; e < 2; ++e) {
    collector.OpenEpoch();
    Rng root = rng.Split();
    IngestStreamUsers(
        collector, EncodeScalarLoad(*oracle, ZipfValues(200, k, rng), root));
    collector.Seal();
  }
  const EstimateSnapshot& a = collector.snapshots()[0];
  const EstimateSnapshot& b = collector.snapshots()[1];
  const SnapshotDelta delta = DiffSnapshots(a, b);
  EXPECT_EQ(delta.from_epoch, 0);
  EXPECT_EQ(delta.to_epoch, 1);
  ASSERT_EQ(delta.count_delta.size(), static_cast<std::size_t>(k));
  double l1 = 0.0;
  for (int v = 0; v < k; ++v) {
    EXPECT_EQ(delta.count_delta[v], b.counts[v] - a.counts[v]);
    EXPECT_DOUBLE_EQ(delta.frequency_delta[v],
                     b.frequencies[v] - a.frequencies[v]);
    l1 += std::abs(b.frequencies[v] - a.frequencies[v]);
  }
  EXPECT_DOUBLE_EQ(delta.l1_drift, l1);

  EstimateSnapshot mismatched;
  mismatched.counts.assign(k + 1, 0);
  EXPECT_THROW(DiffSnapshots(a, mismatched), InvalidArgumentError);
}

TEST(ServeLongitudinalTestDeltas, HistoryCapEvictsOldestFirst) {
  const int k = 8;
  auto oracle = fo::MakeOracle(fo::Protocol::kGrr, k, 1.0);
  LongitudinalOptions options;
  options.schedule = EpochSchedule::Sliding(2);
  options.history_cap = 3;
  LongitudinalCollector collector(*oracle, options);
  Rng rng(13);
  for (int e = 0; e < 10; ++e) {
    collector.OpenEpoch();
    Rng root = rng.Split();
    IngestStreamUsers(
        collector, EncodeScalarLoad(*oracle, ZipfValues(50, k, rng), root));
    collector.Seal();
  }
  ASSERT_EQ(collector.snapshots().size(), 3u);
  EXPECT_EQ(collector.snapshots().front().epoch, 7);
  EXPECT_EQ(collector.snapshots().back().epoch, 9);
  // Windows complete at epochs 1..9 (w = 0..8); the cap keeps the last 3.
  ASSERT_EQ(collector.windows().size(), 3u);
  EXPECT_EQ(collector.windows().front().window, 6);
  EXPECT_EQ(collector.windows().front().first_epoch, 6);
  EXPECT_EQ(collector.windows().back().last_epoch, 9);
  // The cumulative ledger survives eviction: all 10 epochs stay counted.
  EXPECT_EQ(collector.cumulative_ledger().fresh +
                collector.cumulative_ledger().memoized,
            500);
}

// The default (cap 0) keeps everything — the legacy EpochManager contract.
TEST(ServeLongitudinalTestDeltas, DefaultHistoryIsUnbounded) {
  auto oracle = fo::MakeOracle(fo::Protocol::kGrr, 8, 1.0);
  EpochManager manager(*oracle);
  for (int e = 0; e < 12; ++e) {
    manager.OpenEpoch();
    manager.Seal();
  }
  EXPECT_EQ(manager.snapshots().size(), 12u);
  EXPECT_EQ(manager.snapshots().front().epoch, 0);
}

}  // namespace
}  // namespace ldpr::serve
