// Multidimensional front-end (serve/multidim_collector + multidim_wire):
// sealed estimates must equal the batch Estimate() of the same tuple
// stream exactly for every solution/variant, ingest must be all-or-nothing
// on malformed tuples, and the wire formats must match the priced tuple
// widths (fo/comm_cost).

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

#include "data/priors.h"
#include "data/synthetic.h"
#include "fo/comm_cost.h"
#include "serve/loadgen.h"
#include "serve/multidim_collector.h"

namespace ldpr::serve {
namespace {

const data::Dataset& TestDataset() {
  static const data::Dataset dataset = data::NurseryLike(7, 0.02);  // n = 259
  return dataset;
}

template <typename Solution, typename Report>
std::vector<std::vector<std::uint8_t>> SerializeAll(
    const Solution& solution, const std::vector<Report>& reports);

template <>
std::vector<std::vector<std::uint8_t>> SerializeAll(
    const multidim::Spl& spl,
    const std::vector<std::vector<fo::Report>>& reports) {
  std::vector<std::vector<std::uint8_t>> frames;
  for (const auto& r : reports) frames.push_back(SerializeSplReports(spl, r));
  return frames;
}

template <>
std::vector<std::vector<std::uint8_t>> SerializeAll(
    const multidim::Smp& smp, const std::vector<multidim::SmpReport>& reports) {
  std::vector<std::vector<std::uint8_t>> frames;
  for (const auto& r : reports) frames.push_back(SerializeSmpReport(smp, r));
  return frames;
}

template <>
std::vector<std::vector<std::uint8_t>> SerializeAll(
    const multidim::RsFd& rsfd,
    const std::vector<multidim::MultidimReport>& reports) {
  std::vector<std::vector<std::uint8_t>> frames;
  for (const auto& r : reports) frames.push_back(SerializeRsFdReport(rsfd, r));
  return frames;
}

template <>
std::vector<std::vector<std::uint8_t>> SerializeAll(
    const multidim::RsRfd& rsrfd,
    const std::vector<multidim::MultidimReport>& reports) {
  std::vector<std::vector<std::uint8_t>> frames;
  for (const auto& r : reports) {
    frames.push_back(SerializeRsRfdReport(rsrfd, r));
  }
  return frames;
}

/// Randomizes every dataset record, ships the tuples through a
/// MultidimCollector, and checks the sealed estimates against the
/// solution's own batch Estimate of the identical report vector.
template <typename Solution>
void ExpectSealMatchesBatch(const Solution& solution, int lanes) {
  const data::Dataset& ds = TestDataset();
  Rng rng(31);
  std::vector<decltype(solution.RandomizeUser(ds.Record(0), rng))> reports;
  reports.reserve(ds.n());
  for (int i = 0; i < ds.n(); ++i) {
    reports.push_back(solution.RandomizeUser(ds.Record(i), rng));
  }
  const auto frames = SerializeAll(solution, reports);

  MultidimCollector collector(solution, CollectorOptions{.lanes = lanes});
  for (std::size_t i = 0; i < frames.size(); ++i) {
    ASSERT_TRUE(collector
                    .Ingest({frames[i], std::nullopt,
                             static_cast<int>(i * 5 + 1)})
                    .accepted);
  }
  const MultidimSnapshot snapshot = collector.Seal();
  EXPECT_EQ(snapshot.n, ds.n());
  EXPECT_EQ(snapshot.stats.rejected, 0);
  const auto batch = solution.Estimate(reports);
  ASSERT_EQ(snapshot.estimates.size(), batch.size());
  for (std::size_t j = 0; j < batch.size(); ++j) {
    EXPECT_EQ(snapshot.estimates[j], batch[j]) << "attribute " << j;
  }
}

TEST(ServeMultidimTest, SplSealMatchesBatchEstimate) {
  for (fo::Protocol protocol : fo::AllProtocols()) {
    SCOPED_TRACE(fo::ProtocolName(protocol));
    multidim::Spl spl(protocol, TestDataset().domain_sizes(), 2.0);
    ExpectSealMatchesBatch(spl, 3);
  }
}

TEST(ServeMultidimTest, SmpSealMatchesBatchEstimate) {
  for (fo::Protocol protocol : fo::AllProtocols()) {
    SCOPED_TRACE(fo::ProtocolName(protocol));
    multidim::Smp smp(protocol, TestDataset().domain_sizes(), 2.0);
    ExpectSealMatchesBatch(smp, 4);
  }
}

TEST(ServeMultidimTest, RsFdSealMatchesBatchEstimate) {
  for (multidim::RsFdVariant variant :
       {multidim::RsFdVariant::kGrr, multidim::RsFdVariant::kSueZ,
        multidim::RsFdVariant::kSueR, multidim::RsFdVariant::kOueZ,
        multidim::RsFdVariant::kOueR}) {
    SCOPED_TRACE(multidim::RsFdVariantName(variant));
    multidim::RsFd rsfd(variant, TestDataset().domain_sizes(), 2.0);
    ExpectSealMatchesBatch(rsfd, 2);
  }
}

TEST(ServeMultidimTest, RsRfdSealMatchesBatchEstimate) {
  Rng rng(9);
  const auto priors =
      data::BuildPriors(TestDataset(), data::PriorKind::kCorrectLaplace, rng);
  for (multidim::RsRfdVariant variant :
       {multidim::RsRfdVariant::kGrr, multidim::RsRfdVariant::kSueR,
        multidim::RsRfdVariant::kOueR}) {
    SCOPED_TRACE(multidim::RsRfdVariantName(variant));
    multidim::RsRfd rsrfd(variant, TestDataset().domain_sizes(), 2.0, priors);
    ExpectSealMatchesBatch(rsrfd, 3);
  }
}

// The packed tuple widths are exactly what the communication-cost model
// prices (SPL / RS+FD closed forms; SMP per sampled attribute).
TEST(ServeMultidimTest, WireWidthsMatchCommCostModel) {
  const std::vector<int>& ks = TestDataset().domain_sizes();
  const double eps = 2.0;
  for (fo::Protocol protocol :
       {fo::Protocol::kGrr, fo::Protocol::kSue, fo::Protocol::kOue}) {
    multidim::Spl spl(protocol, ks, eps);
    EXPECT_DOUBLE_EQ(SplTupleWireBits(spl),
                     fo::SplTupleBits(protocol, ks, eps));
    multidim::Smp smp(protocol, ks, eps);
    double mean_bits = 0.0;
    for (int j = 0; j < smp.d(); ++j) {
      mean_bits += SmpTupleWireBits(smp, j);
    }
    mean_bits /= smp.d();
    EXPECT_DOUBLE_EQ(mean_bits, fo::SmpTupleBits(protocol, ks, eps));
  }
  // RS+FD GRR: every attribute ships one categorical value at the amplified
  // budget; widths do not depend on epsilon.
  multidim::RsFd rsfd(multidim::RsFdVariant::kGrr, ks, eps);
  EXPECT_DOUBLE_EQ(FdTupleWireBits(false, ks),
                   fo::RsFdTupleBits(fo::Protocol::kGrr, ks, eps));
  multidim::RsFd rsfd_ue(multidim::RsFdVariant::kOueZ, ks, eps);
  EXPECT_DOUBLE_EQ(FdTupleWireBits(true, ks),
                   fo::RsFdTupleBits(fo::Protocol::kOue, ks, eps));
}

// Ingest is all-or-nothing: a tuple whose *last* attribute field is
// malformed must leave every aggregator untouched.
TEST(ServeMultidimTest, MalformedTupleLeavesNothingBehind) {
  const std::vector<int> ks = {4, 6};  // 6 is not a power of two: value 7
                                       // is representable but invalid
  multidim::RsFd rsfd(multidim::RsFdVariant::kGrr, ks, 2.0);
  MultidimCollector collector(rsfd, CollectorOptions{.lanes = 1});

  Rng rng(3);
  const auto good = rsfd.RandomizeUser({1, 2}, rng);
  const auto good_frame = SerializeRsFdReport(rsfd, good);

  // Craft a tuple with valid attribute 0 and out-of-range attribute 1.
  fo::BitWriter writer;
  writer.Write(2, fo::CeilLog2(4));
  writer.Write(7, fo::CeilLog2(6));  // 7 >= k_1 = 6
  EXPECT_FALSE(collector.Ingest({writer.bytes()}).accepted);

  EXPECT_TRUE(collector.Ingest({good_frame}).accepted);
  const MultidimSnapshot snapshot = collector.Seal();
  EXPECT_EQ(snapshot.n, 1);
  EXPECT_EQ(snapshot.stats.rejected, 1);
  // Only the good tuple contributed: the sealed estimate equals the batch
  // estimate of that single report.
  const auto batch = rsfd.Estimate({good});
  for (std::size_t j = 0; j < batch.size(); ++j) {
    EXPECT_EQ(snapshot.estimates[j], batch[j]);
  }
}

// Fuzz every solution front-end with random buffers (this suite runs under
// the ASan fast label): clean accept-or-reject, balanced ledger.
TEST(ServeMultidimTest, RandomBuffersNeverCrash) {
  const data::Dataset& ds = TestDataset();
  multidim::Spl spl(fo::Protocol::kGrr, ds.domain_sizes(), 2.0);
  multidim::Smp smp(fo::Protocol::kOue, ds.domain_sizes(), 2.0);
  multidim::RsFd rsfd(multidim::RsFdVariant::kOueZ, ds.domain_sizes(), 2.0);
  MultidimCollector collectors[] = {
      MultidimCollector(spl, CollectorOptions{.lanes = 2}),
      MultidimCollector(smp, CollectorOptions{.lanes = 2}),
      MultidimCollector(rsfd, CollectorOptions{.lanes = 2}),
  };
  Rng rng(77);
  for (MultidimCollector& collector : collectors) {
    long long accepted = 0;
    const int attempts = 1500;
    for (int trial = 0; trial < attempts; ++trial) {
      std::vector<std::uint8_t> buffer(rng.UniformInt(24));
      for (std::uint8_t& b : buffer) {
        b = static_cast<std::uint8_t>(rng.UniformInt(256));
      }
      accepted +=
          collector.Ingest({buffer, std::nullopt, trial}).accepted ? 1 : 0;
    }
    const MultidimSnapshot snapshot = collector.Seal();
    EXPECT_EQ(snapshot.n, accepted);
    EXPECT_EQ(snapshot.stats.rejected, attempts - accepted);
  }
}

// SMP tuples with an out-of-range attribute index (representable when d is
// not a power of two) are rejected.
TEST(ServeMultidimTest, SmpOutOfRangeAttributeRejected) {
  const std::vector<int> ks = {3, 3, 3, 3, 3};  // d = 5 -> 3 index bits
  multidim::Smp smp(fo::Protocol::kGrr, ks, 2.0);
  MultidimCollector collector(smp, CollectorOptions{.lanes = 1});
  Rng rng(4);
  const auto report = smp.RandomizeUserAttribute({0, 1, 2, 0, 1}, 2, rng);
  std::vector<std::uint8_t> frame = SerializeSmpReport(smp, report);
  EXPECT_TRUE(collector.Ingest({frame}).accepted);
  // Overwrite the 3 index bits with 6 (>= d).
  frame[0] = static_cast<std::uint8_t>((frame[0] & 0x1F) | (6u << 5));
  const IngestResult rejected = collector.Ingest({frame});
  EXPECT_FALSE(rejected.accepted);
  EXPECT_EQ(rejected.reason, RejectReason::kMalformed);
  const MultidimSnapshot snapshot = collector.Seal();
  EXPECT_EQ(snapshot.n, 1);
  EXPECT_EQ(snapshot.stats.rejected, 1);
}

}  // namespace
}  // namespace ldpr::serve
