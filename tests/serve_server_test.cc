// Tests for the network front door: token-bucket refill arithmetic
// (admission), the wire-record framer under torn reads and random split
// points (wire_session), duplicate (user, epoch) rejection through the
// unified IngestRequest API, the socket server end to end over a
// Unix-domain socket — sealed snapshots must be bit-identical to the same
// frames pushed through the in-process path — and the admin scrape
// endpoint, whose /metrics counters must equal the sealed snapshot's
// IngestCounters exactly, including mid-stream scrapes. Runs under the
// ASan fast label.

#include <gtest/gtest.h>
#include <unistd.h>

#include <atomic>
#include <cstdint>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include "core/rng.h"
#include "fo/factory.h"
#include "fo/wire.h"
#include "obs/metrics.h"
#include "serve/admission.h"
#include "serve/collector.h"
#include "serve/loadgen.h"
#include "serve/longitudinal.h"
#include "serve/server.h"
#include "serve/wire_session.h"

namespace ldpr::serve {
namespace {

// ---------------------------------------------------------------------------
// Token buckets: exact refill arithmetic under a synthetic clock
// ---------------------------------------------------------------------------

TEST(TokenBucketTest, RefillArithmeticIsExact) {
  TokenBucket bucket(10.0, 5.0, /*now=*/100.0);  // starts full
  EXPECT_DOUBLE_EQ(bucket.Available(100.0), 5.0);
  for (int i = 0; i < 5; ++i) EXPECT_TRUE(bucket.TryAcquire(100.0));
  EXPECT_FALSE(bucket.TryAcquire(100.0));
  EXPECT_DOUBLE_EQ(bucket.Available(100.0), 0.0);
  // One token refills in exactly 1/rate seconds.
  EXPECT_DOUBLE_EQ(bucket.DelayUntil(100.0), 0.1);
  EXPECT_FALSE(bucket.TryAcquire(100.05));  // only half a token back
  EXPECT_TRUE(bucket.TryAcquire(100.2));    // two tokens back, takes one
  // Refill clamps at burst no matter how long the idle stretch.
  EXPECT_DOUBLE_EQ(bucket.Available(1.0e9), 5.0);
}

TEST(TokenBucketTest, RefillAcrossEpochBoundaries) {
  // The pipeline rolls epochs on a fixed period; a bucket paused near the
  // end of one epoch must carry its exact fractional balance across the
  // boundary — refill depends only on elapsed time, never on epoch count.
  const double epoch_seconds = 1.0;
  TokenBucket bucket(4.0, 8.0, /*now=*/0.0);
  // Drain the burst just before the boundary.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(bucket.TryAcquire(0.9 * epoch_seconds));
  }
  EXPECT_DOUBLE_EQ(bucket.Available(0.9 * epoch_seconds), 0.0);
  // 0.1 s straddling the boundary refills 0.4 tokens, not a fresh burst.
  EXPECT_DOUBLE_EQ(bucket.Available(1.0 * epoch_seconds), 0.4);
  EXPECT_FALSE(bucket.TryAcquire(1.0 * epoch_seconds));
  // A whole epoch later: 0.4 + 4.0, still below burst.
  EXPECT_DOUBLE_EQ(bucket.Available(2.0 * epoch_seconds), 4.4);
  // Clock going backwards must not mint tokens.
  ASSERT_TRUE(bucket.TryAcquire(2.0 * epoch_seconds));
  EXPECT_DOUBLE_EQ(bucket.Available(1.5 * epoch_seconds), 3.4);
}

TEST(TokenBucketTest, ChargeRunsIntoDebtAndConverges) {
  // Pacing charges every record already read (nothing is dropped); the debt
  // delays the resume time so the sustained rate converges to `rate`.
  TokenBucket bucket(10.0, 5.0, /*now=*/0.0);
  for (int i = 0; i < 100; ++i) bucket.Charge(0.0);
  // 100 records against 5 burst: 95 tokens of debt + 1 to proceed.
  EXPECT_DOUBLE_EQ(bucket.DelayUntil(0.0), 9.6);
  // 100 records / (9.6 s + initial burst credit) ~ 10 records/s sustained.
  EXPECT_TRUE(bucket.TryAcquire(9.6));
}

TEST(TokenBucketTest, NonPositiveRateIsUnlimited) {
  TokenBucket bucket(0.0, 0.0, 0.0);
  for (int i = 0; i < 1000; ++i) ASSERT_TRUE(bucket.TryAcquire(0.0));
  EXPECT_DOUBLE_EQ(bucket.DelayUntil(0.0), 0.0);
}

TEST(UserAdmissionTableTest, BucketsArePerUser) {
  AdmissionOptions options;
  options.per_user_rate = 1.0;
  options.per_user_burst = 2.0;
  options.shards = 4;
  UserAdmissionTable table(options);
  ASSERT_TRUE(table.enabled());
  EXPECT_TRUE(table.Admit(7, 0.0));
  EXPECT_TRUE(table.Admit(7, 0.0));
  EXPECT_FALSE(table.Admit(7, 0.0));  // burst spent
  EXPECT_TRUE(table.Admit(-3, 0.0));  // negative ids shard correctly
  EXPECT_TRUE(table.Admit(7, 1.0));   // one token back after 1 s
  EXPECT_EQ(table.users(), 2);
}

// ---------------------------------------------------------------------------
// Wire session framing
// ---------------------------------------------------------------------------

struct SessionFixture {
  std::unique_ptr<fo::FrequencyOracle> oracle =
      fo::MakeOracle(fo::Protocol::kGrr, 16, 1.0);
  Collector collector{*oracle, CollectorOptions{.lanes = 1}};

  std::vector<std::uint8_t> ValidFrame(int value, Rng& rng) {
    return fo::SerializeReport(*oracle, oracle->Randomize(value, rng));
  }
};

TEST(WireSessionTest, TornRecordsReassembleAcrossFeeds) {
  SessionFixture fx;
  WireSession session(fx.collector, nullptr, {}, /*lane=*/0, /*now=*/0.0);

  Rng rng(11);
  std::vector<std::uint8_t> wire;
  for (int i = 0; i < 3; ++i) {
    AppendWireRecord(static_cast<std::uint64_t>(i), fx.ValidFrame(i, rng),
                     wire);
  }
  // Feed byte by byte: every boundary — mid-header, mid-user-id, mid-frame
  // — must reassemble.
  for (std::size_t i = 0; i < wire.size(); ++i) {
    ASSERT_TRUE(session.Feed({&wire[i], 1}, 0.0));
  }
  EXPECT_EQ(session.counters().records, 3);
  EXPECT_EQ(session.counters().ingest.reports, 3);
  EXPECT_EQ(session.counters().wire_bytes,
            static_cast<long long>(wire.size()));
  EXPECT_EQ(session.buffered(), 0u);
}

TEST(WireSessionTest, MalformedFrameIsCountedButConnectionSurvives) {
  SessionFixture fx;
  WireSession session(fx.collector, nullptr, {}, 0, 0.0);

  Rng rng(5);
  const auto valid = fx.ValidFrame(2, rng);
  std::vector<std::uint8_t> wire;
  // Wrong-sized frame (truncated by one byte): the sink's reject, not a
  // protocol error.
  AppendWireRecord(9, {valid.data(), valid.size() - 1}, wire);
  AppendWireRecord(9, valid, wire);
  ASSERT_TRUE(session.Feed(wire, 0.0));
  EXPECT_EQ(session.counters().records, 2);
  EXPECT_EQ(session.counters().ingest.rejected, 1);
  EXPECT_EQ(session.counters().ingest.reports, 1);
  EXPECT_EQ(session.counters().protocol_errors, 0);
}

TEST(WireSessionTest, UnframeableInputIsAProtocolError) {
  SessionFixture fx;
  // Body shorter than the user id field.
  {
    WireSession session(fx.collector, nullptr, {}, 0, 0.0);
    const std::uint8_t short_body[] = {0x00, 0x03, 0xAA, 0xBB, 0xCC};
    EXPECT_FALSE(session.Feed(short_body, 0.0));
    EXPECT_EQ(session.counters().protocol_errors, 1);
  }
  // Announced frame beyond the session's max_frame bound.
  {
    WireSessionOptions options;
    options.max_frame = 16;
    WireSession session(fx.collector, nullptr, options, 0, 0.0);
    const std::uint8_t huge[] = {0xFF, 0xFF};  // body_length 65535
    EXPECT_FALSE(session.Feed(huge, 0.0));
    EXPECT_EQ(session.counters().protocol_errors, 1);
  }
}

TEST(WireSessionTest, FuzzRandomSplitPointsMatchOneShotFeed) {
  SessionFixture one_shot;
  Rng rng(4242);

  // A traffic mix: valid attributed frames, anonymous frames, wrong-sized
  // frames, random bytes at the exact frame size.
  std::vector<std::uint8_t> wire;
  for (int i = 0; i < 200; ++i) {
    const std::uint64_t user = (i % 5 == 0)
                                   ? kAnonymousUser
                                   : static_cast<std::uint64_t>(i % 37);
    std::vector<std::uint8_t> frame = one_shot.ValidFrame(i % 16, rng);
    switch (i % 7) {
      case 3:
        frame.pop_back();  // wrong size -> sink reject
        break;
      case 5:
        for (auto& b : frame) {  // random bytes, exact size
          b = static_cast<std::uint8_t>(rng.UniformInt(256));
        }
        break;
      default:
        break;
    }
    AppendWireRecord(user, frame, wire);
  }

  WireSession reference(one_shot.collector, nullptr, {}, 0, 0.0);
  ASSERT_TRUE(reference.Feed(wire, 0.0));
  const Collector::Drained ref_drained = one_shot.collector.Drain();

  for (int trial = 0; trial < 25; ++trial) {
    SessionFixture fx;
    WireSession session(fx.collector, nullptr, {}, 0, 0.0);
    std::size_t offset = 0;
    while (offset < wire.size()) {
      const std::size_t chunk =
          1 + static_cast<std::size_t>(rng.UniformInt(
                  static_cast<long long>(wire.size() - offset)));
      ASSERT_TRUE(session.Feed({wire.data() + offset, chunk}, 0.0));
      offset += chunk;
    }
    EXPECT_EQ(session.counters().records, reference.counters().records);
    EXPECT_EQ(session.counters().wire_bytes,
              reference.counters().wire_bytes);
    EXPECT_EQ(session.counters().ingest.reports,
              reference.counters().ingest.reports);
    EXPECT_EQ(session.counters().ingest.rejected,
              reference.counters().ingest.rejected);
    EXPECT_EQ(session.buffered(), 0u);
    // The decoded multiset must match bit for bit, not just the tallies.
    const Collector::Drained drained = fx.collector.Drain();
    EXPECT_EQ(drained.counts, ref_drained.counts) << "trial " << trial;
    EXPECT_EQ(drained.n, ref_drained.n) << "trial " << trial;
  }
}

TEST(WireSessionTest, PacingPausesReadsWithoutDroppingRecords) {
  SessionFixture fx;
  WireSessionOptions options;
  options.conn_rate = 10.0;
  options.conn_burst = 2.0;
  WireSession session(fx.collector, nullptr, options, 0, 0.0);

  Rng rng(3);
  std::vector<std::uint8_t> wire;
  for (int i = 0; i < 8; ++i) {
    AppendWireRecord(kAnonymousUser, fx.ValidFrame(i % 16, rng), wire);
  }
  ASSERT_TRUE(session.Feed(wire, /*now=*/0.0));
  // Backpressure, not loss: every record read was processed...
  EXPECT_EQ(session.counters().ingest.reports, 8);
  // ...but the session owes 6 tokens of debt and pauses reads while it
  // refills: 8 charged - 2 burst + 1 to resume = 0.7 s.
  EXPECT_TRUE(session.paused(0.0));
  EXPECT_DOUBLE_EQ(session.resume_at(), 0.7);
  EXPECT_FALSE(session.paused(0.71));
}

TEST(WireSessionTest, PerUserAdmissionRejectsBeforeTheSink) {
  SessionFixture fx;
  AdmissionOptions admission;
  admission.per_user_rate = 1.0;
  admission.per_user_burst = 1.0;
  UserAdmissionTable users(admission);
  WireSession session(fx.collector, &users, {}, 0, 0.0);

  Rng rng(8);
  const auto frame = fx.ValidFrame(4, rng);
  std::vector<std::uint8_t> wire;
  AppendWireRecord(21, frame, wire);
  AppendWireRecord(21, frame, wire);  // over the user's burst
  AppendWireRecord(22, frame, wire);  // a different user is unaffected
  ASSERT_TRUE(session.Feed(wire, 0.0));
  EXPECT_EQ(session.counters().ingest.reports, 2);
  EXPECT_EQ(session.counters().ingest.rate_limited, 1);
  // The rate-limited record never reached the sink's lanes.
  EXPECT_EQ(fx.collector.Drain().n, 2);
}

// ---------------------------------------------------------------------------
// Duplicate (user, epoch) rejection and options plumbing
// ---------------------------------------------------------------------------

TEST(ServeIngestTest, DuplicateUserEpochRejectedWithReason) {
  auto oracle = fo::MakeOracle(fo::Protocol::kOue, 12, 1.0);
  LongitudinalCollector collector(*oracle, {});
  Rng rng(6);
  const auto frame =
      fo::SerializeReport(*oracle, oracle->Randomize(3, rng));

  collector.OpenEpoch();
  EXPECT_TRUE(collector.Ingest({frame, 42}).accepted);
  const IngestResult dup = collector.Ingest({frame, 42});
  EXPECT_FALSE(dup.accepted);
  EXPECT_EQ(dup.reason, RejectReason::kDuplicate);
  EXPECT_STREQ(RejectReasonName(dup.reason), "duplicate");
  // A duplicate is counted, never aggregated, and never double-charged.
  const EstimateSnapshot& first = collector.Seal();
  EXPECT_EQ(first.n, 1);
  EXPECT_EQ(first.stats.reports, 1);
  EXPECT_EQ(first.stats.duplicates, 1);
  EXPECT_EQ(first.stats.rejected, 0);  // not malformed
  EXPECT_EQ(first.ledger.fresh, 1);

  // The same frame in the NEXT epoch is a memoized replay, not a duplicate.
  collector.OpenEpoch();
  EXPECT_TRUE(collector.Ingest({frame, 42}).accepted);
  const EstimateSnapshot& second = collector.Seal();
  EXPECT_EQ(second.stats.duplicates, 0);
  EXPECT_EQ(second.ledger.memoized, 1);
}

TEST(ServeIngestTest, ReplayTableClassifiesFreshMemoizedDuplicate) {
  UserReplayTable table(4);
  const std::vector<std::uint8_t> a = {1, 2, 3};
  const std::vector<std::uint8_t> b = {4, 5, 6};
  using FrameClass = UserReplayTable::FrameClass;
  EXPECT_EQ(table.Classify(1, a, 0), FrameClass::kFresh);
  EXPECT_EQ(table.Classify(1, a, 0), FrameClass::kDuplicate);
  EXPECT_EQ(table.Classify(1, b, 0), FrameClass::kDuplicate);
  EXPECT_EQ(table.Classify(1, a, 1), FrameClass::kMemoized);
  EXPECT_EQ(table.Classify(1, b, 2), FrameClass::kFresh);
  // A duplicate records nothing: user 2's duplicate in epoch 0 must not
  // have consumed frame b's hash.
  EXPECT_EQ(table.Classify(2, a, 0), FrameClass::kFresh);
  EXPECT_EQ(table.Classify(2, b, 0), FrameClass::kDuplicate);
  EXPECT_EQ(table.Classify(2, b, 1), FrameClass::kFresh);
  // one_per_epoch off: same-epoch resubmissions classify by hash instead.
  EXPECT_EQ(table.Classify(3, a, 0, true, false), FrameClass::kFresh);
  EXPECT_EQ(table.Classify(3, a, 0, true, false), FrameClass::kMemoized);
}

TEST(ServeIngestTest, FromCollectorOptionsRoundTrips) {
  CollectorOptions collector_options;
  collector_options.lanes = 3;
  collector_options.consistency = fo::ConsistencyMethod::kClampRenorm;
  collector_options.consistency_threshold = 0.25;
  const LongitudinalOptions longitudinal =
      LongitudinalOptions::FromCollector(collector_options);
  EXPECT_EQ(longitudinal.collector.lanes, 3);
  EXPECT_EQ(longitudinal.collector.consistency,
            fo::ConsistencyMethod::kClampRenorm);
  EXPECT_DOUBLE_EQ(longitudinal.collector.consistency_threshold, 0.25);
  // EpochManager runs on the converted options: the lane count and
  // consistency method must land in the sealed snapshot's pipeline.
  auto oracle = fo::MakeOracle(fo::Protocol::kGrr, 8, 1.0);
  EpochManager manager(*oracle, collector_options);
  manager.OpenEpoch();
  EXPECT_EQ(manager.lanes(), 3);
  manager.Seal();
}

// ---------------------------------------------------------------------------
// The socket server end to end (Unix-domain socket)
// ---------------------------------------------------------------------------

std::string TestSocketPath(const char* tag) {
  char path[96];
  std::snprintf(path, sizeof(path), "/tmp/ldpr_test_%s_%d.sock", tag,
                static_cast<int>(::getpid()));
  return path;
}

TEST(IngestServerTest, UdsSnapshotsBitIdenticalToInProcessPath) {
  const int k = 16;
  const long long n = 4000;
  const long long dup_every = 100;
  auto oracle = fo::MakeOracle(fo::Protocol::kGrr, k, 1.0);
  std::vector<int> values(n);
  for (long long i = 0; i < n; ++i) values[i] = static_cast<int>(i % k);
  Rng root(91);
  sim::Options encode_options;
  encode_options.threads = 1;
  const EncodedStream stream =
      EncodeScalarLoad(*oracle, values, root, encode_options);

  // Reference: the same records (duplicates included) through the
  // in-process IngestRequest path.
  LongitudinalCollector reference(*oracle, {});
  reference.OpenEpoch();
  for (long long i = 0; i < n; ++i) {
    const IngestRequest request{{stream.frame(i), stream.frame_bytes}, i};
    ASSERT_TRUE(reference.Ingest(request).accepted);
    if (i % dup_every == 0) {
      ASSERT_EQ(reference.Ingest(request).reason, RejectReason::kDuplicate);
    }
  }
  const EstimateSnapshot ref_snapshot = reference.Seal();

  // Socket path: two client connections stream the framed records (every
  // dup_every-th twice) at a live server.
  LongitudinalCollector collector(*oracle, {});
  collector.OpenEpoch();
  ServerOptions options;
  options.uds_path = TestSocketPath("e2e");
  IngestServer server(collector, options);
  server.Start();

  const std::size_t record_bytes =
      kRecordHeaderBytes + kRecordUserBytes + stream.frame_bytes;
  std::vector<std::vector<std::uint8_t>> slices;
  long long framed = 0;
  for (int c = 0; c < 2; ++c) {
    slices.push_back(FrameStreamRecords(stream, c * n / 2, (c + 1) * n / 2,
                                        /*first_user=*/0, dup_every));
    framed += static_cast<long long>(slices.back().size() / record_bytes);
  }
  std::vector<std::thread> clients;
  for (auto& slice : slices) {
    clients.emplace_back([&] {
      const SocketSendResult sent = SendOverUds(options.uds_path, slice);
      EXPECT_EQ(sent.bytes, static_cast<long long>(slice.size()));
    });
  }
  for (auto& t : clients) t.join();
  while (server.counters().sessions.records < framed) {
    std::this_thread::yield();
  }
  server.Stop();
  const EstimateSnapshot socket_snapshot = collector.Seal();

  // Bit-identical estimation pipeline output...
  EXPECT_EQ(socket_snapshot.n, ref_snapshot.n);
  EXPECT_EQ(socket_snapshot.counts, ref_snapshot.counts);
  EXPECT_EQ(socket_snapshot.frequencies, ref_snapshot.frequencies);
  EXPECT_EQ(socket_snapshot.consistent, ref_snapshot.consistent);
  // ...with every duplicate counted (not aggregated) on both paths.
  EXPECT_EQ(socket_snapshot.stats.duplicates, ref_snapshot.stats.duplicates);
  EXPECT_GT(socket_snapshot.stats.duplicates, 0);
  EXPECT_EQ(socket_snapshot.stats.reports, n);

  const ServerCounters counters = server.counters();
  EXPECT_EQ(counters.connections, 2);
  EXPECT_EQ(counters.sessions.records, framed);
  EXPECT_EQ(counters.sessions.ingest.reports, n);
  EXPECT_EQ(counters.sessions.ingest.duplicates,
            socket_snapshot.stats.duplicates);
  EXPECT_EQ(counters.sessions.protocol_errors, 0);
}

TEST(IngestServerTest, ProtocolErrorClosesOnlyTheOffendingConnection) {
  auto oracle = fo::MakeOracle(fo::Protocol::kGrr, 8, 1.0);
  Collector collector(*oracle, CollectorOptions{.lanes = 2});
  ServerOptions options;
  options.uds_path = TestSocketPath("protoerr");
  IngestServer server(collector, options);
  server.Start();

  // A garbage connection: unframeable body.
  const std::vector<std::uint8_t> garbage = {0x00, 0x01, 0xFF};
  SendOverUds(options.uds_path, garbage);
  // A good connection afterwards still ingests.
  Rng rng(2);
  std::vector<std::uint8_t> wire;
  AppendWireRecord(kAnonymousUser,
                   fo::SerializeReport(*oracle, oracle->Randomize(1, rng)),
                   wire);
  SendOverUds(options.uds_path, wire);
  while (server.counters().sessions.ingest.reports < 1) {
    std::this_thread::yield();
  }
  server.Stop();

  const ServerCounters counters = server.counters();
  EXPECT_EQ(counters.connections, 2);
  EXPECT_EQ(counters.sessions.protocol_errors, 1);
  EXPECT_EQ(counters.sessions.ingest.reports, 1);
}

// ---------------------------------------------------------------------------
// Admin scrape endpoint
// ---------------------------------------------------------------------------

// Body of a scrape response (the part after the HTTP head).
std::string HttpBody(const std::string& response) {
  const std::size_t head_end = response.find("\r\n\r\n");
  EXPECT_NE(head_end, std::string::npos) << response;
  return head_end == std::string::npos ? "" : response.substr(head_end + 4);
}

// Value of an unlabeled-or-exact-labeled series in a Prometheus text body;
// -1 when the series is absent.
long long SeriesValue(const std::string& body, const std::string& series) {
  const std::string needle = series + " ";
  std::size_t pos = body.rfind("\n" + needle);
  if (pos != std::string::npos) {
    pos += 1;
  } else if (body.rfind(needle, 0) == 0) {
    pos = 0;
  } else {
    return -1;
  }
  return std::stoll(body.substr(pos + needle.size()));
}

// The live /metrics endpoint end to end: stream records (with duplicates)
// at the server over UDS, scrape over the admin UDS, and require the
// scraped ingest counters to equal the sealed snapshot's IngestCounters
// exactly — the acceptance invariant of the telemetry layer.
TEST(AdminEndpointTest, ScrapedCountersMatchSealedSnapshotExactly) {
  const int k = 16;
  const long long n = 4000;
  const long long dup_every = 100;
  auto oracle = fo::MakeOracle(fo::Protocol::kGrr, k, 1.0);
  std::vector<int> values(n);
  for (long long i = 0; i < n; ++i) values[i] = static_cast<int>(i % k);
  Rng root(17);
  sim::Options encode_options;
  encode_options.threads = 1;
  const EncodedStream stream =
      EncodeScalarLoad(*oracle, values, root, encode_options);

  obs::MetricsRegistry registry;
  LongitudinalOptions options;
  options.collector.metrics = &registry;
  LongitudinalCollector collector(*oracle, options);
  collector.OpenEpoch();

  ServerOptions server_options;
  server_options.uds_path = TestSocketPath("admin_ingest");
  server_options.admin_uds_path = TestSocketPath("admin_scrape");
  server_options.metrics = &registry;
  IngestServer server(collector, server_options);
  server.Start();

  const std::size_t record_bytes =
      kRecordHeaderBytes + kRecordUserBytes + stream.frame_bytes;
  const std::vector<std::uint8_t> wire =
      FrameStreamRecords(stream, 0, n, /*first_user=*/0, dup_every);
  const long long framed =
      static_cast<long long>(wire.size() / record_bytes);
  SendOverUds(server_options.uds_path, wire);
  while (server.counters().sessions.records < framed) {
    std::this_thread::yield();
  }

  // Scrape while the epoch is still open: the counters are already exact
  // because the collector's TotalsNow() merges live lane tallies.
  const std::string response =
      HttpGetOverUds(server_options.admin_uds_path, "/metrics");
  EXPECT_EQ(response.rfind("HTTP/1.0 200 OK", 0), 0u) << response;
  EXPECT_NE(response.find("text/plain; version=0.0.4"), std::string::npos);
  const std::string body = HttpBody(response);

  const EstimateSnapshot snapshot = collector.Seal();
  EXPECT_EQ(SeriesValue(body, "ldpr_ingest_reports_total"),
            snapshot.stats.reports);
  EXPECT_EQ(SeriesValue(body, "ldpr_ingest_bytes_total"),
            snapshot.stats.bytes);
  EXPECT_EQ(
      SeriesValue(body, "ldpr_ingest_rejects_total{reason=\"duplicate\"}"),
      snapshot.stats.duplicates);
  EXPECT_GT(snapshot.stats.duplicates, 0);
  EXPECT_EQ(
      SeriesValue(body, "ldpr_ingest_rejects_total{reason=\"malformed\"}"),
      0);
  EXPECT_EQ(SeriesValue(body, "ldpr_server_reports_total"),
            snapshot.stats.reports);
  EXPECT_EQ(SeriesValue(body, "ldpr_server_connections_total"), 1);
  // Mid-epoch the decode-block histogram lags by the rows still staged in
  // the lane (< one block); the seal above flushed them, so a fresh scrape
  // now accounts for every accepted report block by block.
  const std::string sealed_body = HttpBody(
      HttpGetOverUds(server_options.admin_uds_path, "/metrics"));
  EXPECT_EQ(SeriesValue(sealed_body, "ldpr_decode_block_rows_sum"),
            snapshot.stats.reports);

  // The other admin routes: JSON snapshot, 404, and non-GET.
  const std::string json =
      HttpGetOverUds(server_options.admin_uds_path, "/metrics.json");
  EXPECT_EQ(json.rfind("HTTP/1.0 200 OK", 0), 0u);
  EXPECT_NE(json.find("application/json"), std::string::npos);
  EXPECT_NE(HttpBody(json).find("\"ldpr_ingest_reports_total\""),
            std::string::npos);
  EXPECT_EQ(HttpGetOverUds(server_options.admin_uds_path, "/nope")
                .rfind("HTTP/1.0 404", 0),
            0u);

  server.Stop();
}

// Scrapes hammer the admin endpoint while client connections stream: every
// response must be well-formed 200 with monotonically consistent counters,
// and the final scrape must be exact. The TSan/ASan-exercised guarantee
// that scraping mid-epoch is always safe.
TEST(AdminEndpointTest, ScrapeDuringConcurrentStreamingIsSafeAndExact) {
  const int k = 8;
  const long long n = 6000;
  auto oracle = fo::MakeOracle(fo::Protocol::kGrr, k, 1.0);
  std::vector<int> values(n);
  for (long long i = 0; i < n; ++i) values[i] = static_cast<int>(i % k);
  Rng root(23);
  sim::Options encode_options;
  encode_options.threads = 1;
  const EncodedStream stream =
      EncodeScalarLoad(*oracle, values, root, encode_options);

  obs::MetricsRegistry registry;
  Collector collector(*oracle,
                      [&] {
                        CollectorOptions o;
                        o.lanes = 2;
                        o.metrics = &registry;
                        return o;
                      }());

  ServerOptions server_options;
  server_options.uds_path = TestSocketPath("mid_ingest");
  server_options.admin_uds_path = TestSocketPath("mid_scrape");
  server_options.metrics = &registry;
  IngestServer server(collector, server_options);
  server.Start();

  std::atomic<bool> done{false};
  long long last_seen = 0;
  std::thread scraper([&] {
    while (!done.load(std::memory_order_acquire)) {
      const std::string response =
          HttpGetOverUds(server_options.admin_uds_path, "/metrics");
      ASSERT_EQ(response.rfind("HTTP/1.0 200 OK", 0), 0u);
      const long long seen =
          SeriesValue(HttpBody(response), "ldpr_ingest_reports_total");
      ASSERT_GE(seen, last_seen);  // counters never go backwards
      last_seen = seen;
    }
  });

  std::vector<std::thread> clients;
  for (int c = 0; c < 2; ++c) {
    clients.emplace_back([&, c] {
      const std::vector<std::uint8_t> wire = FrameStreamRecords(
          stream, c * n / 2, (c + 1) * n / 2, /*first_user=*/std::nullopt);
      SendOverUds(server_options.uds_path, wire);
    });
  }
  for (auto& t : clients) t.join();
  while (server.counters().sessions.ingest.reports < n) {
    std::this_thread::yield();
  }
  done.store(true, std::memory_order_release);
  scraper.join();

  const std::string body = HttpBody(
      HttpGetOverUds(server_options.admin_uds_path, "/metrics"));
  EXPECT_EQ(SeriesValue(body, "ldpr_ingest_reports_total"), n);
  server.Stop();

  const IngestCounters totals = collector.Drain().tallies;
  EXPECT_EQ(totals.reports, n);
}

}  // namespace
}  // namespace ldpr::serve
