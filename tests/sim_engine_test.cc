// The sharded simulation engine (sim::RunCollection / sim::RunMultidim):
// deterministic per-shard RNG streams must make results identical under any
// thread count (satellite 3, guarding against shared-state races), shard
// boundaries must depend only on n, and both modes must estimate correctly.

#include <cmath>
#include <cstdlib>
#include <string>

#include <gtest/gtest.h>

#include "core/rng.h"
#include "data/synthetic.h"
#include "fo/factory.h"
#include "multidim/rsfd.h"
#include "multidim/rsrfd.h"
#include "multidim/smp.h"
#include "multidim/spl.h"
#include "sim/engine.h"

namespace ldpr::sim {
namespace {

std::vector<int> SkewedValues(int n, int k) {
  std::vector<int> values(n);
  for (long long i = 0; i < n; ++i) {
    values[i] = static_cast<int>((i * 7 + i * i / 5) % k);
  }
  return values;
}

/// Runs fn with LDPR_THREADS set to `threads`, restoring the prior value.
template <typename Fn>
auto WithThreadsEnv(const char* threads, Fn fn) {
  const char* old = std::getenv("LDPR_THREADS");
  std::string saved = old ? old : "";
  setenv("LDPR_THREADS", threads, 1);
  auto result = fn();
  if (old) {
    setenv("LDPR_THREADS", saved.c_str(), 1);
  } else {
    unsetenv("LDPR_THREADS");
  }
  return result;
}

TEST(ShardedRunTest, ShardsPartitionTheRange) {
  Rng root(1);
  Options options;
  options.num_shards = 7;
  std::vector<long long> seen(7, -1);
  std::vector<std::pair<long long, long long>> ranges(7);
  ShardedRun(100, root, options,
             [&](int shard, long long lo, long long hi, Rng&) {
               seen[shard] = shard;
               ranges[shard] = {lo, hi};
             });
  long long covered = 0;
  for (int s = 0; s < 7; ++s) {
    EXPECT_EQ(seen[s], s) << "shard " << s << " never ran";
    EXPECT_LE(ranges[s].first, ranges[s].second);
    covered += ranges[s].second - ranges[s].first;
    if (s > 0) {
      EXPECT_EQ(ranges[s].first, ranges[s - 1].second);
    }
  }
  EXPECT_EQ(covered, 100);
}

TEST(ShardedRunTest, ShardStreamsAreIndependentOfThreadCount) {
  const std::vector<int> values = SkewedValues(20000, 16);
  auto oracle = fo::MakeOracle(fo::Protocol::kOue, 16, 1.0);

  auto run = [&](int threads) {
    Rng root(99);
    Options options;
    options.threads = threads;
    return RunCollection(*oracle, values, root, options);
  };
  const CollectionResult one = run(1);
  const CollectionResult four = run(4);
  EXPECT_EQ(one.counts, four.counts);
  EXPECT_EQ(one.estimate, four.estimate);
  EXPECT_EQ(one.n, four.n);
}

TEST(ShardedRunTest, LdprThreadsEnvDoesNotChangeResults) {
  // The concurrency satellite as specified: LDPR_THREADS in {1, 4} with the
  // same seed must be bit-identical (threads = 0 defers to the env knob).
  const std::vector<int> values = SkewedValues(20000, 16);
  auto oracle = fo::MakeOracle(fo::Protocol::kSue, 16, 1.0);
  auto run = [&] {
    Rng root(1234);
    return RunCollection(*oracle, values, root, Options{});
  };
  const CollectionResult one = WithThreadsEnv("1", run);
  const CollectionResult four = WithThreadsEnv("4", run);
  EXPECT_EQ(one.counts, four.counts);
  EXPECT_EQ(one.estimate, four.estimate);
}

TEST(ShardedRunTest, AutoShardCountDependsOnlyOnN) {
  EXPECT_EQ(AutoShardCount(0), 0);
  EXPECT_EQ(AutoShardCount(1), 1);
  EXPECT_EQ(AutoShardCount(4096), 1);
  EXPECT_EQ(AutoShardCount(4097), 2);
  EXPECT_EQ(AutoShardCount(1 << 20), 256);
  EXPECT_EQ(AutoShardCount(100000000), 256);  // clamped
}

TEST(ShardedRunTest, SuccessiveRunsUseFreshStreams) {
  const std::vector<int> values = SkewedValues(5000, 8);
  auto oracle = fo::MakeOracle(fo::Protocol::kGrr, 8, 1.0);
  Rng root(7);
  const CollectionResult a = RunCollection(*oracle, values, root, Options{});
  const CollectionResult b = RunCollection(*oracle, values, root, Options{});
  EXPECT_NE(a.counts, b.counts);  // same root, advanced stream
}

TEST(RunCollectionTest, StreamingAndClosedFormBothRecoverTruth) {
  const int k = 12;
  const int n = 60000;
  const std::vector<int> values = SkewedValues(n, k);
  std::vector<double> truth(k, 0.0);
  for (int v : values) truth[v] += 1.0 / n;

  for (fo::Protocol protocol : fo::AllProtocols()) {
    auto oracle = fo::MakeOracle(protocol, k, 2.0);
    for (Mode mode : {Mode::kStreaming, Mode::kClosedForm}) {
      Rng root(55);
      Options options;
      options.mode = mode;
      const CollectionResult result =
          RunCollection(*oracle, values, root, options);
      EXPECT_EQ(result.n, n);
      double sum = 0.0;
      for (int v = 0; v < k; ++v) {
        const double sd = std::sqrt(oracle->EstimatorVariance(n, truth[v]));
        EXPECT_NEAR(result.estimate[v], truth[v], 6.0 * sd)
            << fo::ProtocolName(protocol) << " mode "
            << (mode == Mode::kStreaming ? "streaming" : "closed-form")
            << " value " << v;
        sum += result.estimate[v];
      }
      // Eq. 2 estimates sum close to 1 even before consistency steps.
      EXPECT_NEAR(sum, 1.0, 0.15);
    }
  }
}

TEST(RunMultidimTest, ResultsIndependentOfThreadCountForAllSolutions) {
  data::Dataset ds = data::AdultLike(11, 0.02);

  auto check = [](auto&& make_run) {
    const auto one = make_run(1);
    const auto four = make_run(4);
    EXPECT_EQ(one, four);
  };

  multidim::Spl spl(fo::Protocol::kGrr, ds.domain_sizes(), 1.0);
  check([&](int threads) {
    Rng root(3);
    Options options;
    options.threads = threads;
    return RunMultidim(spl, ds, root, options);
  });

  multidim::Smp smp(fo::Protocol::kOue, ds.domain_sizes(), 1.0);
  check([&](int threads) {
    Rng root(4);
    Options options;
    options.threads = threads;
    return RunMultidim(smp, ds, root, options);
  });

  multidim::RsFd rsfd(multidim::RsFdVariant::kOueZ, ds.domain_sizes(), 1.0);
  check([&](int threads) {
    Rng root(5);
    Options options;
    options.threads = threads;
    return RunMultidim(rsfd, ds, root, options);
  });

  std::vector<std::vector<double>> priors;
  for (int kj : ds.domain_sizes()) {
    priors.push_back(std::vector<double>(kj, 1.0 / kj));
  }
  multidim::RsRfd rsrfd(multidim::RsRfdVariant::kGrr, ds.domain_sizes(), 1.0,
                        priors);
  check([&](int threads) {
    Rng root(6);
    Options options;
    options.threads = threads;
    return RunMultidim(rsrfd, ds, root, options);
  });
}

}  // namespace
}  // namespace ldpr::sim
