// Statistical equivalence of the fast (closed-form) profile against
// legacy-exact per-user simulation, at smoke scale.
//
// The closed-form tally paths (multidim/closed_form.h, multidim/numeric.h)
// claim per-value distribution-exactness: an estimate drawn on the fast
// path has the same mean and variance as one drawn by simulating every
// user. The suites below check that claim with 3-sigma z-scores computed
// from the *analytic* estimator variances (Theorems 2/4, RsFdVariance,
// Eq. 2): for every (attribute, value) pair the two fidelities' estimates
// must agree within z = |fast - legacy| / sqrt(Var_fast + Var_legacy).
// With hundreds of pinned-seed draws a small fraction beyond 3 sigma is
// expected (P(|z| > 3) ~ 0.27% per draw), so the assertion is count-based:
// at most 2% of values beyond 3 sigma and none beyond 6 — deterministic
// for the pinned seeds, robust to re-pins.
//
// The four ported scenarios (fig05 / fig16 / abl06 / abl07) are also run
// end-to-end at the Smoke preset under both fidelities: every numeric cell
// must stay finite and the MSE cells within a wide factor band — a
// scenario-level guard against unit errors (a forgotten d or n factor is a
// >= d^2 shift, far outside the band).

#include <cmath>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/metrics.h"
#include "core/rng.h"
#include "data/priors.h"
#include "data/synthetic.h"
#include "exp/emitter.h"
#include "exp/experiment.h"
#include "multidim/adaptive.h"
#include "multidim/closed_form.h"
#include "multidim/numeric.h"
#include "multidim/rsfd.h"
#include "multidim/rsrfd.h"
#include "multidim/smp.h"
#include "multidim/spl.h"
#include "multidim/variance.h"
#include "sim/closed_form.h"

namespace ldpr {
namespace {

constexpr double kEpsilon = 2.0;

const data::Dataset& TestDataset() {
  static const data::Dataset* ds =
      new data::Dataset(data::AcsEmploymentLike(7, 0.2));
  return *ds;
}

const multidim::AttributeHistograms& TestHistograms() {
  static const auto* hists = new multidim::AttributeHistograms(
      sim::BuildAttributeHistograms(TestDataset()));
  return *hists;
}

/// Count-based 3-sigma gate over per-value z-scores.
void ExpectWithinTolerance(const std::vector<double>& z_scores,
                           const std::string& label) {
  ASSERT_FALSE(z_scores.empty()) << label;
  int beyond3 = 0;
  double max_z = 0.0;
  for (double z : z_scores) {
    EXPECT_TRUE(std::isfinite(z)) << label;
    if (z > 3.0) ++beyond3;
    max_z = std::max(max_z, z);
  }
  EXPECT_LE(beyond3, std::max<int>(1, static_cast<int>(z_scores.size()) / 50))
      << label << ": " << beyond3 << "/" << z_scores.size()
      << " values beyond 3 sigma";
  EXPECT_LT(max_z, 6.0) << label;
}

/// z-scores between two per-attribute estimate sets given a per-value
/// variance callback (variance of ONE fidelity's estimator; the difference
/// uses 2x).
template <typename VarianceFn>
std::vector<double> ZScores(
    const std::vector<std::vector<double>>& fast,
    const std::vector<std::vector<double>>& legacy,
    const std::vector<std::vector<double>>& truth, VarianceFn variance) {
  EXPECT_EQ(fast.size(), legacy.size());
  std::vector<double> z;
  for (std::size_t j = 0; j < fast.size(); ++j) {
    EXPECT_EQ(fast[j].size(), legacy[j].size());
    for (std::size_t v = 0; v < fast[j].size(); ++v) {
      const double var =
          variance(static_cast<int>(j), static_cast<int>(v), truth[j][v]);
      z.push_back(std::abs(fast[j][v] - legacy[j][v]) /
                  std::sqrt(2.0 * var));
    }
  }
  return z;
}

TEST(SimFastProfile, RsFdAllVariantsAgree) {
  const data::Dataset& ds = TestDataset();
  const auto truth = ds.Marginals();
  const long long n = ds.n();
  for (multidim::RsFdVariant variant :
       {multidim::RsFdVariant::kGrr, multidim::RsFdVariant::kSueZ,
        multidim::RsFdVariant::kSueR, multidim::RsFdVariant::kOueZ,
        multidim::RsFdVariant::kOueR}) {
    const multidim::RsFd protocol(variant, ds.domain_sizes(), kEpsilon);
    Rng legacy_rng(101), fast_rng(202);
    std::vector<multidim::MultidimReport> reports;
    reports.reserve(ds.n());
    for (int i = 0; i < ds.n(); ++i) {
      reports.push_back(protocol.RandomizeUser(ds.Record(i), legacy_rng));
    }
    const auto legacy = protocol.Estimate(reports);
    const auto fast =
        multidim::EstimateClosedForm(protocol, TestHistograms(), n, fast_rng);
    ExpectWithinTolerance(
        ZScores(fast, legacy, truth,
                [&](int j, int, double f) {
                  return multidim::RsFdVariance(variant, ds.domain_size(j),
                                                ds.d(), kEpsilon, n, f);
                }),
        multidim::RsFdVariantName(variant));
  }
}

TEST(SimFastProfile, RsRfdAllVariantsAgree) {
  const data::Dataset& ds = TestDataset();
  const auto truth = ds.Marginals();
  const long long n = ds.n();
  Rng prior_rng(9);
  const auto priors =
      data::BuildPriors(ds, data::PriorKind::kCorrectLaplace, prior_rng);
  for (multidim::RsRfdVariant variant :
       {multidim::RsRfdVariant::kGrr, multidim::RsRfdVariant::kSueR,
        multidim::RsRfdVariant::kOueR}) {
    const multidim::RsRfd protocol(variant, ds.domain_sizes(), kEpsilon,
                                   priors);
    Rng legacy_rng(303), fast_rng(404);
    std::vector<multidim::MultidimReport> reports;
    reports.reserve(ds.n());
    for (int i = 0; i < ds.n(); ++i) {
      reports.push_back(protocol.RandomizeUser(ds.Record(i), legacy_rng));
    }
    const auto legacy = protocol.Estimate(reports);
    const auto fast =
        multidim::EstimateClosedForm(protocol, TestHistograms(), n, fast_rng);
    ExpectWithinTolerance(
        ZScores(fast, legacy, truth,
                [&](int j, int v, double f) {
                  return protocol.EstimatorVariance(j, v, n, f);
                }),
        multidim::RsRfdVariantName(variant));
  }
}

TEST(SimFastProfile, RsFdAdaptiveAgrees) {
  const data::Dataset& ds = TestDataset();
  const auto truth = ds.Marginals();
  const long long n = ds.n();
  const multidim::RsFdAdaptive protocol(ds.domain_sizes(), kEpsilon);
  Rng legacy_rng(505), fast_rng(606);
  std::vector<multidim::MultidimReport> reports;
  reports.reserve(ds.n());
  for (int i = 0; i < ds.n(); ++i) {
    reports.push_back(protocol.RandomizeUser(ds.Record(i), legacy_rng));
  }
  const auto legacy = protocol.Estimate(reports);
  const auto fast =
      multidim::EstimateClosedForm(protocol, TestHistograms(), n, fast_rng);
  ExpectWithinTolerance(
      ZScores(fast, legacy, truth,
              [&](int j, int, double f) {
                return multidim::RsFdVariance(protocol.choice(j),
                                              ds.domain_size(j), ds.d(),
                                              kEpsilon, n, f);
              }),
      "RS+FD[ADP]");
}

TEST(SimFastProfile, SplAgrees) {
  const data::Dataset& ds = TestDataset();
  const auto truth = ds.Marginals();
  const long long n = ds.n();
  for (fo::Protocol fo_protocol : {fo::Protocol::kGrr, fo::Protocol::kOue}) {
    const multidim::Spl protocol(fo_protocol, ds.domain_sizes(), kEpsilon);
    Rng legacy_rng(707), fast_rng(808);
    multidim::Spl::StreamAggregator agg(protocol);
    std::vector<int> record(ds.d());
    for (int i = 0; i < ds.n(); ++i) {
      for (int j = 0; j < ds.d(); ++j) record[j] = ds.value(i, j);
      agg.AccumulateRecord(record, legacy_rng);
    }
    const auto legacy = agg.Estimate();
    const auto fast =
        multidim::EstimateClosedForm(protocol, TestHistograms(), n, fast_rng);
    ExpectWithinTolerance(
        ZScores(fast, legacy, truth,
                [&](int j, int, double f) {
                  return protocol.oracle(j).EstimatorVariance(n, f);
                }),
        std::string("SPL[") + fo::ProtocolName(fo_protocol) + "]");
  }
}

TEST(SimFastProfile, SmpAgrees) {
  const data::Dataset& ds = TestDataset();
  const auto truth = ds.Marginals();
  const long long n = ds.n();
  // Attribute j sees ~ n/d reports; the variance callback uses that
  // expectation (the count-based gate absorbs the fluctuation).
  const long long nj = n / ds.d();
  for (fo::Protocol fo_protocol : {fo::Protocol::kGrr, fo::Protocol::kOue}) {
    const multidim::Smp protocol(fo_protocol, ds.domain_sizes(), kEpsilon);
    Rng legacy_rng(909), fast_rng(111);
    multidim::Smp::StreamAggregator agg(protocol);
    std::vector<int> record(ds.d());
    for (int i = 0; i < ds.n(); ++i) {
      for (int j = 0; j < ds.d(); ++j) record[j] = ds.value(i, j);
      agg.AccumulateRecord(record, legacy_rng);
    }
    const auto legacy = agg.Estimate();
    const auto fast =
        multidim::EstimateClosedForm(protocol, TestHistograms(), n, fast_rng);
    ExpectWithinTolerance(
        ZScores(fast, legacy, truth,
                [&](int j, int, double f) {
                  return protocol.oracle(j).EstimatorVariance(nj, f);
                }),
        std::string("SMP[") + fo::ProtocolName(fo_protocol) + "]");
  }
}

TEST(SimFastProfile, SmpAdaptiveAgrees) {
  const data::Dataset& ds = TestDataset();
  const auto truth = ds.Marginals();
  const long long n = ds.n();
  const long long nj = n / ds.d();
  const multidim::SmpAdaptive protocol(ds.domain_sizes(), kEpsilon);
  Rng legacy_rng(121), fast_rng(212);
  std::vector<multidim::SmpReport> reports;
  reports.reserve(ds.n());
  for (int i = 0; i < ds.n(); ++i) {
    reports.push_back(protocol.RandomizeUser(ds.Record(i), legacy_rng));
  }
  const auto legacy = protocol.Estimate(reports);
  const auto fast =
      multidim::EstimateClosedForm(protocol, TestHistograms(), n, fast_rng);
  ExpectWithinTolerance(
      ZScores(fast, legacy, truth,
              [&](int j, int, double f) {
                return protocol.oracle(j).EstimatorVariance(nj, f);
              }),
      "SMP[ADP]");
}

TEST(SimFastProfile, GrrFakeCountsPreserveTotals) {
  // GRR-payload fake data is drawn as a sum-preserving multinomial and the
  // sampled users' support is per-cell binomial: per attribute the total
  // support count stays within [0, n * something sane] and the fake half
  // alone preserves its total. Checked indirectly: with epsilon -> large,
  // p -> 1 and the sampled sub-population reports truthfully, so the
  // support counts of a GRR attribute must sum close to n (fakes sum
  // exactly to n - m_j, truthful to ~m_j).
  const data::Dataset& ds = TestDataset();
  const long long n = ds.n();
  const multidim::RsFd protocol(multidim::RsFdVariant::kGrr,
                                ds.domain_sizes(), 50.0);
  Rng rng(343);
  const auto counts =
      multidim::SampleSupportCounts(protocol, TestHistograms(), n, rng);
  for (int j = 0; j < ds.d(); ++j) {
    long long total = 0;
    for (long long c : counts[j]) total += c;
    EXPECT_EQ(total, n) << "attribute " << j
                        << ": at p ~ 1 every user contributes exactly one "
                           "supported value";
  }
}

TEST(SimFastProfile, NumericMechanismsAgree) {
  const int d = 4;
  const long long n = 4000;
  const multidim::NumericLdp snap(multidim::NumericMechanism::kDuchi, 1.0,
                                  32);
  Rng data_rng(77);
  std::vector<std::vector<double>> columns(d);
  std::vector<std::vector<long long>> hists(d);
  for (int j = 0; j < d; ++j) {
    columns[j].resize(n);
    hists[j].assign(32, 0);
    for (long long i = 0; i < n; ++i) {
      const double raw = std::clamp(0.3 * j - 0.4 + 0.25 * data_rng.Gaussian(),
                                    -1.0, 1.0);
      columns[j][i] = snap.GridValue(snap.GridIndex(raw));
      ++hists[j][snap.GridIndex(raw)];
    }
  }
  for (multidim::NumericMechanism mechanism :
       {multidim::NumericMechanism::kDuchi,
        multidim::NumericMechanism::kPiecewise}) {
    const multidim::NumericLdp mech(mechanism, kEpsilon, 32);
    Rng legacy_rng(454), fast_rng(565);
    const auto legacy =
        multidim::EstimateNumericMeans(mech, columns, legacy_rng);
    const auto fast =
        multidim::EstimateNumericMeansClosedForm(mech, hists, fast_rng);
    // Var of a mean over ~ n/d users, bounded by the worst per-output
    // conditional variance.
    double worst = 0.0;
    for (int g = 0; g < mech.grid_points(); ++g) {
      worst = std::max(worst, mech.ConditionalVariance(g));
    }
    const double var = worst / (static_cast<double>(n) / d);
    std::vector<double> z;
    for (int j = 0; j < d; ++j) {
      z.push_back(std::abs(fast[j] - legacy[j]) / std::sqrt(2.0 * var));
    }
    ExpectWithinTolerance(z, multidim::NumericMechanismName(mechanism));
  }
}

TEST(SimFastProfile, NumericMomentsAgree) {
  const int d = 3;
  const long long n = 6000;
  const multidim::NumericLdp snap(multidim::NumericMechanism::kPiecewise,
                                  1.0, 32);
  Rng data_rng(88);
  std::vector<std::vector<double>> columns(d);
  const long long mean_half = multidim::NumericMeanHalfCount(n);
  std::vector<std::vector<long long>> mean_hists(d), moment_hists(d);
  for (int j = 0; j < d; ++j) {
    columns[j].resize(n);
    mean_hists[j].assign(32, 0);
    moment_hists[j].assign(32, 0);
    for (long long i = 0; i < n; ++i) {
      const double raw =
          std::clamp(0.2 * j * (data_rng.Bernoulli(0.5) ? 1.0 : -1.0) +
                         0.3 * data_rng.Gaussian(),
                     -1.0, 1.0);
      columns[j][i] = snap.GridValue(snap.GridIndex(raw));
      ++(i < mean_half ? mean_hists : moment_hists)[j][snap.GridIndex(raw)];
    }
  }
  const multidim::NumericLdp mech(multidim::NumericMechanism::kPiecewise,
                                  kEpsilon, 32);
  Rng legacy_rng(676), fast_rng(787);
  const auto legacy =
      multidim::EstimateNumericMoments(mech, columns, legacy_rng);
  const auto fast = multidim::EstimateNumericMomentsClosedForm(
      mech, mean_hists, moment_hists, fast_rng);
  double worst = 0.0;
  for (int g = 0; g < mech.grid_points(); ++g) {
    worst = std::max(worst, mech.ConditionalVariance(g));
  }
  const double var = worst / (static_cast<double>(n) / 2 / d);
  std::vector<double> z;
  for (int j = 0; j < d; ++j) {
    z.push_back(std::abs(fast.mean[j] - legacy.mean[j]) /
                std::sqrt(2.0 * var));
    // second_moment = (s-estimate + 1) / 2, so its variance is var / 4.
    z.push_back(std::abs(fast.second_moment[j] - legacy.second_moment[j]) /
                std::sqrt(2.0 * var / 4.0));
  }
  ExpectWithinTolerance(z, "PM moments");
}

// ---------------------------------------------------------------------------
// Scenario-level: the four ported experiments under both fidelities.

class RecordingEmitter : public exp::Emitter {
 public:
  void Comment(const std::string&) override {}
  void Text(const std::string&) override {}
  void BeginTable(const exp::TableSpec& spec) override {
    tables.push_back({spec, {}});
  }
  void Row(const std::vector<exp::Cell>& cells) override {
    tables.back().rows.push_back(cells);
  }
  struct Table {
    exp::TableSpec spec;
    std::vector<std::vector<exp::Cell>> rows;
  };
  std::vector<Table> tables;
};

RecordingEmitter RunScenario(const std::string& name,
                             exp::RunProfile::Fidelity fidelity) {
  const exp::ExperimentSpec* spec = exp::Registry::Instance().Find(name);
  EXPECT_NE(spec, nullptr) << name;
  exp::RunProfile profile = exp::RunProfile::Smoke();
  profile.fidelity = fidelity;
  RecordingEmitter recording;
  exp::RunExperiment(*spec, recording, profile);
  return recording;
}

TEST(SimFastProfile, PortedScenariosMatchShapeAndMagnitude) {
  for (const std::string name : {"fig05", "fig16", "abl06", "abl07"}) {
    SCOPED_TRACE(name);
    const RecordingEmitter legacy =
        RunScenario(name, exp::RunProfile::Fidelity::kLegacyExact);
    const RecordingEmitter fast =
        RunScenario(name, exp::RunProfile::Fidelity::kFast);
    ASSERT_EQ(legacy.tables.size(), fast.tables.size());
    for (std::size_t t = 0; t < legacy.tables.size(); ++t) {
      ASSERT_EQ(legacy.tables[t].rows.size(), fast.tables[t].rows.size());
      for (std::size_t r = 0; r < legacy.tables[t].rows.size(); ++r) {
        const auto& lrow = legacy.tables[t].rows[r];
        const auto& frow = fast.tables[t].rows[r];
        ASSERT_EQ(lrow.size(), frow.size());
        // Cell 0 is the x axis — must match exactly.
        EXPECT_EQ(lrow[0].text, frow[0].text);
        for (std::size_t c = 1; c < lrow.size(); ++c) {
          if (!lrow[c].is_number) continue;
          EXPECT_TRUE(std::isfinite(frow[c].number));
          // MSE cells: same quantity estimated twice; a unit error (lost d
          // or n factor) lands orders of magnitude outside this band.
          if (lrow[c].number > 0.0 && frow[c].number > 0.0) {
            const double ratio = frow[c].number / lrow[c].number;
            EXPECT_GT(ratio, 1.0 / 32.0)
                << name << " table " << t << " row " << r << " col " << c;
            EXPECT_LT(ratio, 32.0)
                << name << " table " << t << " row " << r << " col " << c;
          }
        }
      }
    }
  }
}

}  // namespace
}  // namespace ldpr
