// ldpr_cli — run the library's pipelines from the command line.
//
// Subcommands:
//   experiment Run the registered paper experiments (figures, ablations,
//              framework studies): `experiment list`, `experiment describe
//              <name|glob>`, `experiment run <name|glob> [--smoke]
//              [--json file.json|-]`.
//   estimate   Estimate per-attribute frequencies of a CSV dataset under a
//              chosen multidimensional solution and protocol.
//   attack     Evaluate the sampled-attribute inference (AIF) attack against
//              RS+FD / RS+RFD on a CSV dataset.
//   reident    Evaluate the multi-survey SMP re-identification attack.
//   uniqueness Anonymity-set analysis of a dataset and the closed-form
//              predicted RID-ACC (attack/uniqueness).
//   homogeneity Top-k shortlist homogeneity attack on a held-out sensitive
//              attribute (attack/homogeneity).
//   recommend  Per-attribute protocol recommendation: variance-optimal
//              GRR/OUE rule plus the cheapest-within-slack rule from the
//              communication-cost model.
//   ledger     Expected sequential privacy loss across repeated surveys
//              (privacy/accountant).
//   pool       Pool-inference attack simulation across repeated collections
//              of one attribute (attack/pool).
//   synth      Generate a synthetic census CSV (Adult / ACS / Nursery shape).
//   metrics    Scrape a running serve-demo's admin endpoint (--socket
//              /tmp/ldpr_admin.sock [--path /metrics|/metrics.json]) and
//              print the response body.
//
// Examples:
//   ldpr_cli experiment list
//   ldpr_cli experiment run fig01 --smoke
//   ldpr_cli experiment run 'fig*' --json results.json
//   ldpr_cli synth --dataset adult --scale 0.1 --out adult.csv
//   ldpr_cli estimate --csv adult.csv --solution rsrfd --protocol grr
//            --epsilon 1.0
//   ldpr_cli attack --csv adult.csv --solution rsfd --protocol sue-z
//            --epsilon 8
//   ldpr_cli reident --csv adult.csv --protocol grr --epsilon 4 --surveys 5

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "attack/aif.h"
#include "attack/profiling.h"
#include "attack/reident.h"
#include "attack/homogeneity.h"
#include "attack/pool.h"
#include "attack/uniqueness.h"
#include "core/check.h"
#include "core/metrics.h"
#include "core/parallel.h"
#include "core/sampling.h"
#include "data/csv.h"
#include "data/longitudinal.h"
#include "data/priors.h"
#include "data/synthetic.h"
#include "exp/datasets.h"
#include "exp/experiment.h"
#include "fo/comm_cost.h"
#include "multidim/adaptive.h"
#include "multidim/rsfd.h"
#include "multidim/rsrfd.h"
#include "multidim/smp.h"
#include "multidim/spl.h"
#include "core/stats.h"
#include "obs/metrics.h"
#include "privacy/accountant.h"
#include "serve/collector.h"
#include "serve/loadgen.h"
#include "serve/longitudinal.h"
#include "serve/server.h"
#include "serve/wire_session.h"

namespace {

using namespace ldpr;

/// Minimal --key value argument parser.
class Args {
 public:
  Args(int argc, char** argv, int first) {
    for (int i = first; i + 1 < argc; i += 2) {
      LDPR_REQUIRE(std::strncmp(argv[i], "--", 2) == 0,
                   "expected --flag, got '" << argv[i] << "'");
      values_[argv[i] + 2] = argv[i + 1];
    }
  }

  std::string Get(const std::string& key, const std::string& fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  double GetDouble(const std::string& key, double fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stod(it->second);
  }
  int GetInt(const std::string& key, int fallback) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : std::stoi(it->second);
  }

 private:
  std::map<std::string, std::string> values_;
};

fo::Protocol ParseProtocol(const std::string& name) {
  for (fo::Protocol p : fo::AllProtocols()) {
    std::string lower = fo::ProtocolName(p);
    for (char& c : lower) c = static_cast<char>(std::tolower(c));
    if (name == lower) return p;
  }
  LDPR_REQUIRE(false, "unknown protocol '" << name
                                           << "' (grr|olh|ss|sue|oue)");
  return fo::Protocol::kGrr;
}

multidim::RsFdVariant ParseRsFdVariant(const std::string& name) {
  if (name == "grr") return multidim::RsFdVariant::kGrr;
  if (name == "sue-z") return multidim::RsFdVariant::kSueZ;
  if (name == "sue-r") return multidim::RsFdVariant::kSueR;
  if (name == "oue-z") return multidim::RsFdVariant::kOueZ;
  if (name == "oue-r") return multidim::RsFdVariant::kOueR;
  LDPR_REQUIRE(false, "unknown RS+FD variant '"
                          << name << "' (grr|sue-z|sue-r|oue-z|oue-r)");
  return multidim::RsFdVariant::kGrr;
}

multidim::RsRfdVariant ParseRsRfdVariant(const std::string& name) {
  if (name == "grr") return multidim::RsRfdVariant::kGrr;
  if (name == "sue-r") return multidim::RsRfdVariant::kSueR;
  if (name == "oue-r") return multidim::RsRfdVariant::kOueR;
  LDPR_REQUIRE(false,
               "unknown RS+RFD variant '" << name << "' (grr|sue-r|oue-r)");
  return multidim::RsRfdVariant::kGrr;
}

// Memoized (exp/datasets): repeated invocations within one process — e.g.
// the experiment runner sweeping scenarios — load each source once.
const data::Dataset& LoadOrSynthesize(const Args& args, Rng& rng) {
  (void)rng;
  const std::string csv = args.Get("csv", "");
  if (!csv.empty()) return exp::GetCsvDataset(csv);
  const std::string name = args.Get("dataset", "acs");
  const double scale = args.GetDouble("scale", 0.2);
  const std::uint64_t seed = args.GetInt("seed", 2023);
  if (name == "adult") return exp::GetDataset(exp::DatasetKind::kAdult, seed, scale);
  if (name == "acs") {
    return exp::GetDataset(exp::DatasetKind::kAcsEmployment, seed, scale);
  }
  LDPR_REQUIRE(name == "nursery",
               "unknown dataset '" << name << "' (adult|acs|nursery)");
  return exp::GetDataset(exp::DatasetKind::kNursery, seed, scale);
}

void PrintEstimates(const data::Dataset& ds,
                    const std::vector<std::vector<double>>& est,
                    const std::vector<std::vector<double>>& truth) {
  std::printf("%-12s %6s %12s %12s %12s\n", "attribute", "value", "true",
              "estimated", "abs.err");
  for (int j = 0; j < ds.d(); ++j) {
    const int show = std::min(ds.domain_size(j), 5);
    for (int v = 0; v < show; ++v) {
      std::printf("%-12s %6d %12.5f %12.5f %12.5f\n",
                  ds.attribute_name(j).c_str(), v, truth[j][v], est[j][v],
                  std::abs(truth[j][v] - est[j][v]));
    }
    if (show < ds.domain_size(j)) {
      std::printf("%-12s   ... (%d more values)\n",
                  ds.attribute_name(j).c_str(), ds.domain_size(j) - show);
    }
  }
  std::printf("\nMSE_avg = %.4e\n", MseAvg(truth, est));
}

int CmdSynth(const Args& args) {
  Rng rng(1);
  const data::Dataset& ds = LoadOrSynthesize(args, rng);
  const std::string out = args.Get("out", "synthetic.csv");
  data::SaveCsv(ds, out);
  std::printf("wrote %d records x %d attributes to %s\n", ds.n(), ds.d(),
              out.c_str());
  return 0;
}

int CmdEstimate(const Args& args) {
  Rng rng(args.GetInt("seed", 1));
  const data::Dataset& ds = LoadOrSynthesize(args, rng);
  const double eps = args.GetDouble("epsilon", 1.0);
  const std::string solution = args.Get("solution", "rsfd");
  const auto truth = ds.Marginals();
  std::printf("n=%d d=%d epsilon=%.3f solution=%s\n\n", ds.n(), ds.d(), eps,
              solution.c_str());

  if (solution == "spl" || solution == "smp") {
    fo::Protocol protocol = ParseProtocol(args.Get("protocol", "grr"));
    if (solution == "spl") {
      multidim::Spl spl(protocol, ds.domain_sizes(), eps);
      std::vector<std::vector<fo::Report>> reports;
      for (int i = 0; i < ds.n(); ++i) {
        reports.push_back(spl.RandomizeUser(ds.Record(i), rng));
      }
      PrintEstimates(ds, spl.Estimate(reports), truth);
    } else {
      multidim::Smp smp(protocol, ds.domain_sizes(), eps);
      std::vector<multidim::SmpReport> reports;
      for (int i = 0; i < ds.n(); ++i) {
        reports.push_back(smp.RandomizeUser(ds.Record(i), rng));
      }
      PrintEstimates(ds, smp.Estimate(reports), truth);
    }
    return 0;
  }
  if (solution == "rsfd") {
    multidim::RsFd rsfd(ParseRsFdVariant(args.Get("protocol", "grr")),
                        ds.domain_sizes(), eps);
    std::vector<multidim::MultidimReport> reports;
    for (int i = 0; i < ds.n(); ++i) {
      reports.push_back(rsfd.RandomizeUser(ds.Record(i), rng));
    }
    PrintEstimates(ds, rsfd.Estimate(reports), truth);
    return 0;
  }
  if (solution == "rsrfd") {
    auto priors = data::BuildPriors(ds, data::PriorKind::kCorrectLaplace, rng);
    multidim::RsRfd rsrfd(ParseRsRfdVariant(args.Get("protocol", "grr")),
                          ds.domain_sizes(), eps, priors);
    std::vector<multidim::MultidimReport> reports;
    for (int i = 0; i < ds.n(); ++i) {
      reports.push_back(rsrfd.RandomizeUser(ds.Record(i), rng));
    }
    PrintEstimates(ds, rsrfd.Estimate(reports), truth);
    return 0;
  }
  LDPR_REQUIRE(false, "unknown solution '" << solution
                                           << "' (spl|smp|rsfd|rsrfd)");
  return 1;
}

int CmdAttack(const Args& args) {
  Rng rng(args.GetInt("seed", 1));
  const data::Dataset& ds = LoadOrSynthesize(args, rng);
  const double eps = args.GetDouble("epsilon", 8.0);
  const std::string solution = args.Get("solution", "rsfd");

  attack::AifConfig config;
  const std::string model = args.Get("model", "nk");
  config.model = model == "pk"   ? attack::AifModel::kPk
                 : model == "hm" ? attack::AifModel::kHm
                                 : attack::AifModel::kNk;
  config.synthetic_multiplier = args.GetDouble("synthetic", 1.0);
  config.compromised_fraction = args.GetDouble("compromised", 0.1);
  config.gbdt.num_rounds = args.GetInt("gbdt-rounds", 10);
  config.gbdt.max_depth = args.GetInt("gbdt-depth", 4);

  attack::AifResult result;
  if (solution == "rsrfd") {
    auto priors = data::BuildPriors(ds, data::PriorKind::kCorrectLaplace, rng);
    multidim::RsRfd protocol(ParseRsRfdVariant(args.Get("protocol", "grr")),
                             ds.domain_sizes(), eps, priors);
    result = attack::RunAifAttack(
        ds,
        [&](const std::vector<int>& r, Rng& g) {
          return protocol.RandomizeUser(r, g);
        },
        [&](const std::vector<multidim::MultidimReport>& reps) {
          return protocol.Estimate(reps);
        },
        config, rng);
  } else {
    multidim::RsFd protocol(ParseRsFdVariant(args.Get("protocol", "grr")),
                            ds.domain_sizes(), eps);
    result = attack::RunAifAttack(
        ds,
        [&](const std::vector<int>& r, Rng& g) {
          return protocol.RandomizeUser(r, g);
        },
        [&](const std::vector<multidim::MultidimReport>& reps) {
          return protocol.Estimate(reps);
        },
        config, rng);
  }
  std::printf("model=%s train_n=%d test_n=%d\n",
              attack::AifModelName(config.model), result.train_n,
              result.test_n);
  std::printf("AIF-ACC = %.3f%%   (baseline %.3f%%, %.1fx)\n",
              result.aif_acc_percent, result.baseline_percent,
              result.aif_acc_percent / result.baseline_percent);
  return 0;
}

int CmdReident(const Args& args) {
  Rng rng(args.GetInt("seed", 1));
  const data::Dataset& ds = LoadOrSynthesize(args, rng);
  const double eps = args.GetDouble("epsilon", 4.0);
  const int surveys = args.GetInt("surveys", 5);
  fo::Protocol protocol = ParseProtocol(args.Get("protocol", "grr"));

  attack::SurveyPlan plan = attack::MakeSurveyPlan(ds.d(), surveys, rng);
  auto channel = attack::MakeLdpChannel(protocol, ds.domain_sizes(), eps);
  auto snapshots = attack::SimulateSmpProfiling(
      ds, *channel, plan, attack::PrivacyMetricMode::kUniform, rng);

  std::vector<bool> bk(ds.d(), true);
  attack::ReidentConfig config;
  config.top_k = {1, 10};
  config.max_targets = args.GetInt("targets", 3000);

  std::printf("protocol=%s epsilon=%.2f n=%d\n", fo::ProtocolName(protocol),
              eps, ds.n());
  std::printf("baseline: top-1 %.4f%%, top-10 %.4f%%\n",
              attack::BaselineRidAcc(1, ds.n()),
              attack::BaselineRidAcc(10, ds.n()));
  std::printf("%8s %12s %12s\n", "surveys", "top-1(%)", "top-10(%)");
  for (int s = 2; s <= surveys; ++s) {
    auto result =
        attack::ReidentAccuracy(snapshots[s - 1], ds, bk, config, rng);
    std::printf("%8d %12.4f %12.4f\n", s, result.rid_acc_percent[0],
                result.rid_acc_percent[1]);
  }
  return 0;
}

int CmdUniqueness(const Args& args) {
  Rng rng(args.GetInt("seed", 1));
  const data::Dataset& ds = LoadOrSynthesize(args, rng);
  std::printf("n=%d d=%d\n\n", ds.n(), ds.d());

  attack::UniquenessProfile full = attack::ComputeUniqueness(ds);
  std::printf("full profile: %lld classes, %.2f%% unique, mean class %.2f\n",
              full.num_classes, 100.0 * full.unique_fraction,
              full.mean_class_size);

  std::printf("\n%-4s %10s %10s %10s\n", "m", "unique(%)", "E[top1]",
              "E[top10]");
  for (const auto& point :
       attack::UniquenessCurve(ds, args.GetInt("subsets", 8), rng)) {
    std::printf("%-4d %10.2f %10.4f %10.4f\n", point.num_attributes,
                100.0 * point.unique_fraction, point.expected_top1,
                point.expected_top10);
  }

  const double eps = args.GetDouble("epsilon", 4.0);
  fo::Protocol protocol = ParseProtocol(args.Get("protocol", "grr"));
  std::vector<int> attrs(std::min(5, ds.d()));
  for (std::size_t a = 0; a < attrs.size(); ++a) attrs[a] = static_cast<int>(a);
  std::printf(
      "\npredicted RID-ACC (%s, eps=%.1f, first %zu attrs): top-1 %.4f%%, "
      "top-10 %.4f%%\n",
      fo::ProtocolName(protocol), eps, attrs.size(),
      attack::PredictedRidAccPercent(ds, attrs, protocol, eps, 1),
      attack::PredictedRidAccPercent(ds, attrs, protocol, eps, 10));
  return 0;
}

int CmdHomogeneity(const Args& args) {
  Rng rng(args.GetInt("seed", 1));
  const data::Dataset& ds = LoadOrSynthesize(args, rng);
  const double eps = args.GetDouble("epsilon", 4.0);
  fo::Protocol protocol = ParseProtocol(args.Get("protocol", "grr"));
  const int sensitive = args.GetInt("sensitive", ds.d() - 1);
  LDPR_REQUIRE(sensitive >= 0 && sensitive < ds.d(),
               "--sensitive out of range");

  auto channel = attack::MakeLdpChannel(protocol, ds.domain_sizes(), eps);
  std::vector<attack::Profile> profiles(ds.n());
  for (int i = 0; i < ds.n(); ++i) {
    for (int j = 0; j < ds.d(); ++j) {
      if (j == sensitive) continue;
      profiles[i].emplace_back(
          j, channel->ReportAndPredict(ds.value(i, j), j, rng));
    }
  }
  std::vector<bool> bk(ds.d(), true);
  attack::HomogeneityConfig config;
  config.top_k = args.GetInt("topk", 10);
  config.max_targets = args.GetInt("targets", 3000);
  attack::HomogeneityResult result =
      attack::HomogeneityAttack(profiles, ds, bk, sensitive, config, rng);
  std::printf("protocol=%s eps=%.2f sensitive=%s (k=%d) top-k=%d\n",
              fo::ProtocolName(protocol), eps,
              ds.attribute_name(sensitive).c_str(),
              ds.domain_size(sensitive), config.top_k);
  std::printf("inference ACC         = %.2f%% (baseline %.2f%%)\n",
              result.inference_acc_percent, result.baseline_percent);
  std::printf("homogeneous shortlists = %.1f%%, ACC there = %.2f%%\n",
              100.0 * result.homogeneous_fraction,
              result.homogeneous_inference_acc_percent);
  std::printf("mean l-diversity       = %.2f\n", result.mean_l_diversity);
  return 0;
}

int CmdRecommend(const Args& args) {
  Rng rng(args.GetInt("seed", 1));
  const data::Dataset& ds = LoadOrSynthesize(args, rng);
  const double eps = args.GetDouble("epsilon", 1.0);
  const double slack = args.GetDouble("slack", 1.05);
  std::printf("n=%d d=%d epsilon=%.2f slack=%.2f\n\n", ds.n(), ds.d(), eps,
              slack);
  std::printf("%-12s %-5s %-18s %-12s %-14s\n", "attribute", "k",
              "cheapest-in-slack", "adp", "bits/report");
  for (int j = 0; j < ds.d(); ++j) {
    const int k = ds.domain_size(j);
    const fo::Protocol comm = fo::RecommendProtocol(k, eps, slack);
    const fo::Protocol adp = multidim::AdaptiveSmpChoice(k, eps);
    std::printf("%-12s %-5d %-18s %-12s %-14.0f\n",
                ds.attribute_name(j).c_str(), k, fo::ProtocolName(comm),
                fo::ProtocolName(adp), fo::ReportBits(comm, k, eps));
  }
  std::printf("\nper-user upload with OUE everywhere: SMP %.0f bits, "
              "RS+FD %.0f bits\n",
              fo::SmpTupleBits(fo::Protocol::kOue, ds.domain_sizes(), eps),
              fo::RsFdTupleBits(fo::Protocol::kOue, ds.domain_sizes(), eps));
  return 0;
}

int CmdLedger(const Args& args) {
  const int d = args.GetInt("d", 10);
  const double eps = args.GetDouble("epsilon", 1.0);
  const int surveys = args.GetInt("surveys", 12);
  Rng rng(args.GetInt("seed", 1));
  std::printf("d=%d eps=%.2f per survey\n\n", d, eps);
  std::printf("%-9s %14s %14s %14s\n", "surveys", "uniform", "nonuni(mean)",
              "nonuni(max)");
  for (int s = 1; s <= surveys; ++s) {
    privacy::LedgerSummary nonuni =
        privacy::SimulateSmpLedgers(d, s, eps, true, 10000, rng);
    if (s <= d) {
      std::printf("%-9d %14.3f %14.3f %14.3f\n", s,
                  privacy::ExpectedSmpTotalEpsilonUniform(d, s, eps),
                  nonuni.mean_total, nonuni.max_total);
    } else {
      std::printf("%-9d %14s %14.3f %14.3f\n", s, "-", nonuni.mean_total,
                  nonuni.max_total);
    }
  }
  return 0;
}

int CmdPool(const Args& args) {
  const int k = args.GetInt("k", 16);
  const int num_pools = args.GetInt("pools", 4);
  const double eps = args.GetDouble("epsilon", 2.0);
  const int users = args.GetInt("users", 2000);
  fo::Protocol protocol = ParseProtocol(args.Get("protocol", "oue"));
  Rng rng(args.GetInt("seed", 1));
  auto oracle = fo::MakeOracle(protocol, k, eps);
  const auto pools = attack::ContiguousPools(k, num_pools);
  std::printf("protocol=%s k=%d pools=%d eps=%.2f users=%d\n",
              fo::ProtocolName(protocol), k, num_pools, eps, users);
  std::printf("%-9s %12s %12s\n", "reports", "ACC(%)", "baseline(%)");
  for (int r : {1, 2, 7, 30, 90, 180}) {
    auto result =
        attack::SimulatePoolInference(*oracle, pools, users, r, rng);
    std::printf("%-9d %12.2f %12.2f\n", r, result.acc_percent,
                result.baseline_percent);
  }
  return 0;
}

// Loadgen -> collector round trip through the longitudinal pipeline: a
// fixed population of memoizing clients reports a churning Zipf value every
// epoch over the wire (randomize/replay -> serialize -> lock-striped ingest
// -> seal); the demo prints the per-epoch throughput/MSE table, the privacy
// ledger (fresh vs memoized, per-epoch and cumulative eps) and, when
// --windows asks for multi-epoch windows, the completed window estimates.
int CmdServeDemo(const Args& args) {
  const int k = args.GetInt("k", 64);
  const double eps = args.GetDouble("epsilon", 1.0);
  const long long users = args.GetInt("users", 200000);
  const int epochs = args.GetInt("epochs", 4);
  const int threads = args.GetInt("threads", 0);
  const int producers = threads > 0 ? threads : DefaultThreadCount();
  const bool memoize = args.GetInt("memoize", 1) != 0;
  const double churn = args.GetDouble("churn", 0.05);
  fo::Protocol protocol = ParseProtocol(args.Get("protocol", "oue"));
  const std::uint64_t seed = args.GetInt("seed", 1);

  auto oracle = fo::MakeOracle(protocol, k, eps);
  serve::LongitudinalOptions options;
  options.collector.lanes = args.GetInt("lanes", 4);
  options.schedule = serve::ParseEpochSchedule(args.Get("windows", "fixed"));
  options.history_cap = args.GetInt("history-cap", 0);
  // A deployment without memoizing clients must not credit chance frame
  // collisions as replays.
  options.memoized_replays_free = memoize;

  // Telemetry: --admin <uds_path> binds the read-only scrape endpoint
  // (GET /metrics Prometheus text, /metrics.json) on the ingest server's
  // event loop; --metrics-every N prints a RenderJson snapshot after every
  // Nth seal; --admin-linger S keeps the admin endpoint alive S seconds
  // after the summary footer so an external scraper can read the final
  // counters. Either flag routes the pipeline into the global registry.
  const std::string admin = args.Get("admin", "");
  const int metrics_every = args.GetInt("metrics-every", 0);
  const double admin_linger = args.GetDouble("admin-linger", 0.0);
  if (!admin.empty() || metrics_every > 0) {
    options.collector.metrics = &obs::MetricsRegistry::Global();
  }
  serve::LongitudinalCollector collector(*oracle, options);
  serve::LongitudinalClients clients(*oracle, users, memoize);

  // --listen <uds_path> switches ingest from in-process calls to the socket
  // front door: an IngestServer on that Unix-domain socket, with
  // --connections LoadGen socket clients streaming framed records at it.
  // --dup-every N sends every Nth record twice (exercising the duplicate
  // (user, epoch) rejection); --user-rate / --conn-rate arm the admission
  // layers; --require-rate R fails the run (exit 1) when the aggregate
  // decoded rate lands below R reports/s.
  const std::string listen = args.Get("listen", "");
  const bool socket_mode = !listen.empty();
  const int connections =
      std::max(1, args.GetInt("connections", std::min(producers, 4)));
  const long long dup_every = args.GetInt("dup-every", 0);
  const double require_rate = args.GetDouble("require-rate", 0.0);
  std::unique_ptr<serve::IngestServer> server;
  if (socket_mode || !admin.empty()) {
    serve::ServerOptions server_options;
    server_options.uds_path = listen;  // empty = admin-only server
    server_options.max_connections = std::max(connections + 4, 8);
    server_options.admission.per_user_rate = args.GetDouble("user-rate", 0.0);
    server_options.session.conn_rate = args.GetDouble("conn-rate", 0.0);
    server_options.admin_uds_path = admin;
    server_options.metrics = options.collector.metrics;
    server = std::make_unique<serve::IngestServer>(collector, server_options);
    server->Start();
  }

  std::printf(
      "serve-demo: protocol=%s k=%d eps=%.2f users/epoch=%lld lanes=%d "
      "threads=%d windows=%s(W=%d,S=%d) memoize=%d churn=%.2f (%zu wire "
      "bytes/report)\n\n",
      fo::ProtocolName(protocol), k, eps, users, collector.lanes(), producers,
      serve::WindowKindName(options.schedule.kind()),
      options.schedule.length(), options.schedule.stride(), memoize ? 1 : 0,
      churn, collector.report_bytes());
  std::printf("%-6s %10s %9s %9s %12s %12s %12s\n", "epoch", "accepted",
              "rejected", "MB", "reports/s", "MSE", "MSE(cons.)");

  // Per-user values churn with a stationary drift, so the population
  // marginal stays the base Zipf while individual users change (and break
  // their permanent answers) at rate `churn`.
  const std::vector<double> truth = ZipfDistribution(k, 1.3);
  data::LongitudinalConfig drift;
  drift.rounds = epochs;
  drift.change_probability = churn;
  drift.drift = data::DriftKind::kStationary;
  drift.seed = seed;
  const std::vector<std::vector<int>> rounds =
      data::GenerateScalarRounds(truth, static_cast<int>(users), drift);

  Rng root(seed * 977 + 1);
  long long total_reports = 0;
  double total_seconds = 0.0;
  for (int epoch = 0; epoch < epochs; ++epoch) {
    sim::Options encode_options;
    encode_options.threads = threads;
    const serve::EncodedStream stream =
        clients.EncodeRound(rounds[epoch], root, encode_options);

    collector.OpenEpoch();
    // Time the ingest loop alone and rate the reports that actually decoded
    // (accepted), so this table and bench/micro_serve measure the same
    // thing: neither counts rejected frames, seal work, or demo overhead.
    // In --listen mode the timed region is the socket round trip instead:
    // send every framed record over UDS and drain the server completely
    // (records framed == records processed) before sealing.
    const double ingest_start = MonotonicSeconds();
    long long decoded = 0;
    if (socket_mode) {
      const long long records_before = server->counters().sessions.records;
      const long long reports_before =
          server->counters().sessions.ingest.reports;
      std::vector<std::vector<std::uint8_t>> slices(connections);
      long long framed = 0;
      const std::size_t record_bytes = serve::kRecordHeaderBytes +
                                       serve::kRecordUserBytes +
                                       stream.frame_bytes;
      for (int c = 0; c < connections; ++c) {
        const long long lo = stream.count * c / connections;
        const long long hi = stream.count * (c + 1) / connections;
        slices[c] = serve::FrameStreamRecords(stream, lo, hi,
                                              /*first_user=*/0, dup_every);
        framed += static_cast<long long>(slices[c].size() / record_bytes);
      }
      std::vector<std::thread> senders;
      for (int c = 0; c < connections; ++c) {
        senders.emplace_back(
            [&, c] { serve::SendOverUds(listen, slices[c]); });
      }
      for (std::thread& t : senders) t.join();
      while (server->counters().sessions.records - records_before < framed) {
        std::this_thread::yield();
      }
      decoded = server->counters().sessions.ingest.reports - reports_before;
    } else {
      decoded = serve::IngestStreamUsers(collector, stream, /*first_user=*/0,
                                         threads);
    }
    const double ingest_seconds = MonotonicSeconds() - ingest_start;
    const serve::EstimateSnapshot& snapshot = collector.Seal();
    std::printf("%-6lld %10lld %9lld %9.2f %12.3e %12.4e %12.4e\n",
                snapshot.epoch, snapshot.stats.reports,
                snapshot.stats.rejected,
                static_cast<double>(snapshot.stats.bytes) / (1024.0 * 1024.0),
                ingest_seconds > 0.0 ? decoded / ingest_seconds : 0.0,
                Mse(truth, snapshot.frequencies),
                Mse(truth, snapshot.consistent));
    total_reports += decoded;
    total_seconds += ingest_seconds;
    if (metrics_every > 0 && (epoch + 1) % metrics_every == 0) {
      std::printf("%s\n", obs::MetricsRegistry::Global().RenderJson().c_str());
    }
  }

  std::printf("\nprivacy ledger (fresh randomizations charged eps=%.2f, "
              "memoized replays charged 0):\n",
              eps);
  std::printf("%-6s %10s %10s %7s %12s %12s %12s %12s %12s\n", "epoch",
              "fresh", "memoized", "hit%", "eps_epoch", "eps_cum",
              "worst_attr", "user_mean", "user_max");
  for (const serve::EstimateSnapshot& s : collector.snapshots()) {
    std::printf("%-6lld %10lld %10lld %7.1f %12.1f %12.1f %12.1f %12.4f "
                "%12.4f\n",
                s.epoch, s.ledger.fresh, s.ledger.memoized,
                100.0 * s.cumulative_ledger.MemoizationHitRate(),
                s.ledger.total_epsilon, s.cumulative_ledger.total_epsilon,
                s.cumulative_ledger.worst_attribute_epsilon,
                s.cumulative_ledger.mean_user_epsilon,
                s.cumulative_ledger.max_user_epsilon);
  }

  if (options.schedule.length() > 1) {
    std::printf("\ncompleted windows (%s, W=%d, stride=%d):\n",
                serve::WindowKindName(options.schedule.kind()),
                options.schedule.length(), options.schedule.stride());
    std::printf("%-8s %14s %12s %12s\n", "window", "epochs", "n", "MSE");
    for (const serve::WindowSnapshot& w : collector.windows()) {
      std::printf("%-8lld [%4lld..%4lld] %12lld %12.4e\n", w.window,
                  w.first_epoch, w.last_epoch, w.n,
                  Mse(truth, w.frequencies));
    }
  }

  if (socket_mode) {
    const serve::ServerCounters sc = server->counters();
    std::printf(
        "\nsocket front door (%s): %lld connection(s), %lld records, "
        "%.2f wire MB, protocol errors %lld, shed %lld\n%s\n",
        listen.c_str(), sc.connections, sc.sessions.records,
        static_cast<double>(sc.sessions.wire_bytes) / (1024.0 * 1024.0),
        sc.sessions.protocol_errors, sc.shed_connections,
        FormatRejects(sc.sessions.ingest).c_str());
  }

  // Aggregate across all producer threads (wall-clock rate of the whole
  // fan-out), the same number BM_ServeIngestMT reports as items_per_second.
  const double aggregate_rate =
      total_seconds > 0 ? total_reports / total_seconds : 0.0;
  std::printf(
      "\nsealed %d epochs, %lld reports decoded, aggregate ingest %.3e "
      "reports/s across %d producer(s)\n",
      epochs, total_reports, aggregate_rate,
      socket_mode ? connections : producers);
  if (server) {
    // The admin endpoint stays scrapeable for --admin-linger seconds after
    // the summary line, so an external scraper (the CI smoke) can read the
    // final counters before shutdown.
    std::fflush(stdout);
    if (admin_linger > 0.0) {
      std::this_thread::sleep_for(
          std::chrono::duration<double>(admin_linger));
    }
    server->Stop();
  }
  if (require_rate > 0.0 && aggregate_rate < require_rate) {
    std::fprintf(stderr,
                 "FAIL: aggregate ingest %.3e reports/s below required "
                 "%.3e\n",
                 aggregate_rate, require_rate);
    return 1;
  }
  return 0;
}

int CmdExperiment(int argc, char** argv) {
  const std::string action = argc >= 3 ? argv[2] : "list";
  std::string pattern = "*";
  bool smoke = false;
  std::string profile_name;
  std::string json_path;
  bool saw_pattern = false;
  for (int i = 3; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg == "--profile" && i + 1 < argc) {
      profile_name = argv[++i];
      LDPR_REQUIRE(profile_name == "legacy" || profile_name == "fast" ||
                       profile_name == "smoke",
                   "unknown profile '" << profile_name
                                       << "' (legacy|fast|smoke)");
    } else if (arg == "--json" && i + 1 < argc) {
      json_path = argv[++i];
    } else if (arg.rfind("--", 0) != 0 && !saw_pattern) {
      pattern = arg;
      saw_pattern = true;
    } else {
      LDPR_REQUIRE(false, "unexpected experiment argument '" << arg << "'");
    }
  }

  const auto& registry = exp::Registry::Instance();
  const auto matches = registry.Match(pattern);

  // A pattern that matches nothing must fail loudly for every action: a CI
  // script invoking `experiment run <glob>` against a renamed scenario must
  // not silently no-op into a green job.
  if (matches.empty() && (action != "list" || pattern != "*")) {
    std::fprintf(stderr, "error: no experiment matches '%s'\n",
                 pattern.c_str());
    return 1;
  }

  if (action == "list") {
    std::printf("%-10s %-10s %-28s %s\n", "name", "group", "title",
                "description");
    for (const exp::ExperimentSpec* spec : matches) {
      std::printf("%-10s %-10s %-28s %s\n", spec->name.c_str(),
                  spec->group.c_str(), spec->title.c_str(),
                  spec->description.c_str());
    }
    std::printf("\n%zu experiments registered\n", matches.size());
    return 0;
  }

  if (action == "describe") {
    for (const exp::ExperimentSpec* spec : matches) {
      std::printf("name:        %s\n", spec->name.c_str());
      std::printf("title:       %s\n", spec->title.c_str());
      std::printf("group:       %s\n", spec->group.c_str());
      std::printf("datasets:   ");
      if (spec->datasets.empty()) std::printf(" (synthetic/closed-form)");
      for (const std::string& ds : spec->datasets) {
        std::printf(" %s", ds.c_str());
      }
      std::printf("\ndescription: %s\n\n", spec->description.c_str());
    }
    std::printf(
        "scale knobs: LDPR_RUNS LDPR_SCALE LDPR_REIDENT_TARGETS "
        "LDPR_THREADS\n"
        "             LDPR_GBDT_ROUNDS LDPR_GBDT_DEPTH (or --smoke)\n");
    return 0;
  }

  LDPR_REQUIRE(action == "run", "unknown experiment action '"
                                    << action << "' (list|describe|run)");

  // Environment contract first (LDPR_SMOKE / LDPR_PROFILE), CLI flags
  // override. --smoke scales down without changing the fidelity axis.
  exp::RunProfile profile = exp::RunProfile::Resolve();
  if (smoke || profile_name == "smoke") {
    const exp::RunProfile::Fidelity fidelity = profile.fidelity;
    profile = exp::RunProfile::Smoke();
    profile.fidelity = fidelity;
  }
  if (profile_name == "fast") {
    profile.fidelity = exp::RunProfile::Fidelity::kFast;
  } else if (profile_name == "legacy") {
    profile.fidelity = exp::RunProfile::Fidelity::kLegacyExact;
  }
  const bool json_to_stdout = json_path == "-";
  std::string json_docs;
  for (const exp::ExperimentSpec* spec : matches) {
    exp::TeeEmitter tee;
    exp::CsvEmitter csv;
    if (!json_to_stdout) tee.Add(&csv);
    std::string json;
    exp::JsonEmitter json_emitter(&json, spec->name);
    if (!json_path.empty()) tee.Add(&json_emitter);
    exp::RunExperiment(*spec, tee, profile);
    if (!json_path.empty()) {
      if (!json_docs.empty()) json_docs += ",\n";
      json_docs += json;
    }
  }
  if (!json_path.empty()) {
    const std::string doc = "[" + json_docs + "]\n";
    if (json_to_stdout) {
      std::fwrite(doc.data(), 1, doc.size(), stdout);
    } else {
      std::FILE* f = std::fopen(json_path.c_str(), "w");
      LDPR_REQUIRE(f != nullptr, "cannot write '" << json_path << "'");
      std::fwrite(doc.data(), 1, doc.size(), f);
      std::fclose(f);
      std::fprintf(stderr, "wrote %s (%zu experiments)\n", json_path.c_str(),
                   matches.size());
    }
  }
  return 0;
}

/// Scrapes a running serve-demo's admin endpoint over its Unix-domain
/// socket and prints the response body (Prometheus text for /metrics, JSON
/// for /metrics.json). Non-200 responses print the status line to stderr
/// and fail.
int CmdMetrics(const Args& args) {
  const std::string socket = args.Get("socket", "");
  LDPR_REQUIRE(!socket.empty(),
               "metrics requires --socket <admin_uds_path> (the serve-demo "
               "--admin path)");
  const std::string path = args.Get("path", "/metrics");
  const std::string response = serve::HttpGetOverUds(socket, path);

  std::size_t head_end = response.find("\r\n\r\n");
  std::size_t skip = 4;
  if (head_end == std::string::npos) {
    head_end = response.find("\n\n");
    skip = 2;
  }
  LDPR_REQUIRE(head_end != std::string::npos,
               "malformed HTTP response from '" << socket << "'");
  const std::string body = response.substr(head_end + skip);
  if (response.rfind("HTTP/1.0 200", 0) != 0 &&
      response.rfind("HTTP/1.1 200", 0) != 0) {
    const std::string status = response.substr(0, response.find('\n'));
    std::fprintf(stderr, "error: scrape failed: %s\n", status.c_str());
    return 1;
  }
  std::fwrite(body.data(), 1, body.size(), stdout);
  return 0;
}

void Usage() {
  std::printf(
      "usage: ldpr_cli "
      "<experiment|serve-demo|metrics|synth|estimate|attack|reident|"
      "uniqueness|homogeneity|recommend|ledger|pool>\n"
      "                [--flag value ...]\n"
      "  experiment: list | describe <name|glob> | run <name|glob> "
      "[--smoke] [--profile legacy|fast|smoke] [--json f.json|-]\n"
      "  serve-demo: --protocol oue --k 64 --epsilon 1 --users 200000 "
      "--epochs 4 --lanes 4 --threads 4\n"
      "              --windows fixed|sliding:L|overlap:L:S --memoize 0|1 "
      "--churn 0.05\n"
      "              [--listen /tmp/ldpr.sock --connections 4 --dup-every 0 "
      "--user-rate 0 --conn-rate 0 --require-rate 0]\n"
      "              [--admin /tmp/ldpr_admin.sock --admin-linger 0 "
      "--metrics-every 0]\n"
      "  metrics:    --socket /tmp/ldpr_admin.sock [--path "
      "/metrics|/metrics.json]\n"
      "  common: --csv file.csv | --dataset adult|acs|nursery --scale 0.2\n"
      "  estimate: --solution spl|smp|rsfd|rsrfd --protocol ... --epsilon e\n"
      "  attack:   --solution rsfd|rsrfd --protocol grr|sue-z|... --model "
      "nk|pk|hm\n"
      "  reident:  --protocol grr|olh|ss|sue|oue --epsilon e --surveys 5\n"
      "  synth:    --dataset adult|acs|nursery --scale 0.2 --out file.csv\n"
      "  uniqueness: --subsets 8 --protocol grr --epsilon 4\n"
      "  homogeneity: --sensitive 9 --topk 10 --protocol grr --epsilon 4\n"
      "  recommend:  --epsilon 1 --slack 1.05\n"
      "  ledger:     --d 10 --epsilon 1 --surveys 12\n"
      "  pool:       --k 16 --pools 4 --protocol oue --epsilon 2\n");
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    Usage();
    return 1;
  }
  const std::string cmd = argv[1];
  try {
    if (cmd == "experiment") return CmdExperiment(argc, argv);
    Args args(argc, argv, 2);
    if (cmd == "serve-demo") return CmdServeDemo(args);
    if (cmd == "metrics") return CmdMetrics(args);
    if (cmd == "synth") return CmdSynth(args);
    if (cmd == "estimate") return CmdEstimate(args);
    if (cmd == "attack") return CmdAttack(args);
    if (cmd == "reident") return CmdReident(args);
    if (cmd == "uniqueness") return CmdUniqueness(args);
    if (cmd == "homogeneity") return CmdHomogeneity(args);
    if (cmd == "recommend") return CmdRecommend(args);
    if (cmd == "ledger") return CmdLedger(args);
    if (cmd == "pool") return CmdPool(args);
    Usage();
    return 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
}
