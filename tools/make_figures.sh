#!/usr/bin/env bash
# Sweeps registered experiments with --json and renders the full figure set
# via tools/plot_experiments.py — the `figures` CMake target.
#
# Usage: make_figures.sh <ldpr_cli> <out_dir> [pattern]
#
# One CLI invocation runs the whole sweep (the dataset cache then loads each
# population once); the resulting JSON is partitioned into the plot tool's
# three figure families (utility = log-MSE axes, attack = percent axes,
# generic = everything else) and rendered family by family. Scale comes from
# the usual environment knobs — e.g.
#   LDPR_PROFILE=fast ../tools/make_figures.sh tools/ldpr_cli figures
# for the closed-form profile at full populations, or LDPR_SMOKE=1 for a
# quick smoke sweep.
set -euo pipefail

cli="${1:?usage: make_figures.sh <ldpr_cli> <out_dir> [pattern]}"
out="${2:?usage: make_figures.sh <ldpr_cli> <out_dir> [pattern]}"
pattern="${3:-*}"
tools_dir="$(cd "$(dirname "$0")" && pwd)"

mkdir -p "$out"
json="$out/experiments.json"

echo "sweeping experiments matching '$pattern' ..."
"$cli" experiment run "$pattern" --json "$json" > "$out/experiments.txt"

# Partition the sweep by figure family (mirrors plot_experiments.py's
# docstring; unknown experiments fall into `generic`).
python3 - "$json" "$out" <<'EOF'
import json, sys

UTILITY = {
    "fig05", "fig16", "abl06", "abl07", "wang01", "wang02", "csv01", "srv01",
}
ATTACK = {
    "fig01", "fig02", "fig03", "fig04", "fig09", "fig10", "fig11", "fig12",
    "fig13", "fig14", "fig15", "fig17", "abl03", "abl08", "fw01",
}

path, out = sys.argv[1], sys.argv[2]
with open(path) as f:
    docs = json.load(f)

families = {"utility": [], "attack": [], "generic": []}
for doc in docs:
    name = doc.get("experiment", "")
    family = ("utility" if name in UTILITY
              else "attack" if name in ATTACK else "generic")
    families[family].append(doc)

for family, subset in families.items():
    with open(f"{out}/experiments_{family}.json", "w") as f:
        json.dump(subset, f)
    print(f"{family}: {len(subset)} experiment(s)")
EOF

# Without matplotlib, validate what would be plotted instead of failing
# (the plot tool's --check mode).
check_flag=""
if ! python3 -c "import matplotlib" 2>/dev/null; then
  echo "matplotlib not available: running plot validation only (--check)"
  check_flag="--check"
fi

for family in utility attack generic; do
  family_json="$out/experiments_${family}.json"
  if [ "$(python3 -c "import json;print(len(json.load(open('$family_json'))))")" = "0" ]; then
    continue
  fi
  python3 "$tools_dir/plot_experiments.py" "$family" \
    --json "$family_json" --out-dir "$out" $check_flag
done

echo "figures written to $out"
