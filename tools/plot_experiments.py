#!/usr/bin/env python3
"""Turn `ldpr_cli experiment run --json` documents into the paper's figures.

One subcommand per figure family:

  utility  MSE-versus-epsilon curves on a log y axis (fig05, fig16, abl06,
           abl07, wang01, wang02 — any table whose cells are MSEs).
  attack   attack-accuracy curves, linear percent y axis (fig01-04,
           fig09-15, fig17, abl03, abl08, fw01, ...).
  generic  x-versus-value lines with an auto-scaled y axis (everything
           else: fw studies, comm-cost tables, ...).
  list     print the experiments and tables a JSON document contains.

Examples:
  ldpr_cli experiment run fig05 --json fig05.json
  tools/plot_experiments.py utility --json fig05.json --out-dir plots/
  tools/plot_experiments.py attack --json fig01.json --check   # no matplotlib

`--check` parses and validates the document and reports what would be
plotted without importing matplotlib — the CI smoke for environments
without it. Output files are named <experiment>_<table-index>.png.

Colors are the skill-validated categorical palette (fixed slot order, CVD
checked for adjacent series); the grid is recessive; one y axis per chart.
"""

import argparse
import json
import re
import sys

# Validated categorical palette, fixed slot order (light mode). Series i
# always wears slot i — never cycled, never reordered by rank.
PALETTE = [
    "#2a78d6",  # blue
    "#eb6834",  # orange
    "#1baf7a",  # aqua
    "#eda100",  # yellow
    "#e87ba4",  # magenta
    "#008300",  # green
    "#4a3aa7",  # violet
    "#e34948",  # red
]
TEXT_PRIMARY = "#0b0b0b"
TEXT_SECONDARY = "#52514e"
SURFACE = "#fcfcfb"
GRID = "#e4e3df"


def load_docs(path):
    with open(path) as f:
        docs = json.load(f)
    if isinstance(docs, dict):
        docs = [docs]
    if not isinstance(docs, list):
        raise ValueError(f"{path}: expected a JSON array of experiment docs")
    for doc in docs:
        for key in ("experiment", "tables"):
            if key not in doc:
                raise ValueError(f"{path}: document missing '{key}'")
    return docs


def numeric_series(table):
    """Splits a table into (xs, {column: ys}) keeping numeric cells only."""
    columns = table.get("columns", [])
    xs, series = [], {name: [] for name in columns}
    for row in table.get("rows", []):
        if not row or not isinstance(row[0], (int, float)):
            continue
        xs.append(row[0])
        for i, name in enumerate(columns):
            value = row[1 + i] if 1 + i < len(row) else None
            series[name].append(
                value if isinstance(value, (int, float)) else None
            )
    return xs, series


def slug(text):
    return re.sub(r"[^A-Za-z0-9_.-]+", "_", text).strip("_") or "table"


def plot_family(docs, family, out_dir, check):
    made = []
    if not check:
        import matplotlib

        matplotlib.use("Agg")
        import matplotlib.pyplot as plt

    for doc in docs:
        for t, table in enumerate(doc["tables"]):
            xs, series = numeric_series(table)
            # Keep the original column index as the palette slot: a column
            # that is non-numeric in one panel must not shift the colors of
            # the series after it (color follows the entity, not its rank).
            drawable = [
                (slot, name, ys)
                for slot, (name, ys) in enumerate(series.items())
                if any(v is not None for v in ys)
            ]
            if not xs or not drawable:
                continue
            # Tables wider than the palette (e.g. abl05's 12-protocol cost
            # frontier) are split into several charts of <= 8 series each
            # rather than rejected — the `figures` target renders the whole
            # registry unattended.
            chunks = [
                drawable[i : i + len(PALETTE)]
                for i in range(0, len(drawable), len(PALETTE))
            ]
            single = len(chunks) == 1
            # Original column slots are only safe palette indices when every
            # drawable slot fits; a table whose non-numeric columns push a
            # drawable slot past the palette re-slots by chart position too.
            keep_slots = single and drawable[-1][0] < len(PALETTE)
            base = f"{doc['experiment']}_{t:02d}_{slug(table.get('section') or 'main')}"
            for chunk_index, chunk in enumerate(chunks):
                name = base if single else f"{base}_{chr(ord('a') + chunk_index)}"
                made.append(name)
                if check:
                    continue
                _plot_chart(
                    plt, family, doc, table, xs, chunk, keep_slots, name,
                    out_dir,
                )
    return made


def _plot_chart(plt, family, doc, table, xs, chunk, keep_slots, name, out_dir):
    fig, ax = plt.subplots(figsize=(6.0, 4.0), dpi=150)
    fig.patch.set_facecolor(SURFACE)
    ax.set_facecolor(SURFACE)
    for index, (slot, label, ys) in enumerate(chunk):
        ax.plot(
            xs,
            ys,
            label=label,
            # Tables whose slots all fit keep the original column slot
            # (color follows the entity across panels); split or
            # slot-overflowing tables re-slot within each chart.
            color=PALETTE[slot if keep_slots else index],
            linewidth=2.0,
            marker="o",
            markersize=4.5,
        )
    if family == "utility":
        ax.set_yscale("log")
        ax.set_ylabel("MSE", color=TEXT_PRIMARY)
    elif family == "attack":
        ax.set_ylabel("accuracy (%)", color=TEXT_PRIMARY)
    else:
        ax.set_ylabel("value", color=TEXT_PRIMARY)
    ax.set_xlabel(table.get("x", "x"), color=TEXT_PRIMARY)
    title = doc["experiment"]
    if table.get("section"):
        title += f" — {table['section']}"
    ax.set_title(title, color=TEXT_PRIMARY, fontsize=10)
    ax.grid(True, color=GRID, linewidth=0.6)
    ax.set_axisbelow(True)
    for spine in ("top", "right"):
        ax.spines[spine].set_visible(False)
    for spine in ("left", "bottom"):
        ax.spines[spine].set_color(TEXT_SECONDARY)
    ax.tick_params(colors=TEXT_SECONDARY)
    if len(chunk) >= 2:
        ax.legend(fontsize=8, frameon=False, labelcolor=TEXT_PRIMARY)
    fig.tight_layout()
    out = f"{out_dir.rstrip('/')}/{name}.png"
    fig.savefig(out, facecolor=SURFACE)
    plt.close(fig)
    print(f"wrote {out}")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "family", choices=["utility", "attack", "generic", "list"]
    )
    parser.add_argument("--json", required=True, help="experiment JSON file")
    parser.add_argument("--out-dir", default=".")
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate and report without importing matplotlib",
    )
    args = parser.parse_args()

    docs = load_docs(args.json)
    if args.family == "list":
        for doc in docs:
            print(f"{doc['experiment']}: {len(doc['tables'])} tables")
            for t, table in enumerate(doc["tables"]):
                xs, series = numeric_series(table)
                print(
                    f"  [{t}] {table.get('section') or '(main)'}: "
                    f"{len(xs)} rows x {len(series)} series"
                )
        return 0

    made = plot_family(docs, args.family, args.out_dir, args.check)
    if not made:
        print("error: no plottable tables found", file=sys.stderr)
        return 1
    if args.check:
        print(f"OK: {len(made)} figure(s) would be written: {', '.join(made)}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
