#!/usr/bin/env bash
# Re-pins the fast-profile golden CSVs (tests/golden/*_fast.txt).
#
# Run this whenever the fast profile's RNG streams change (new draw order in
# the closed-form samplers, a re-salted seed schedule, ...) — never to paper
# over an unexplained diff: a fast golden drifting without an intentional
# stream change is a bug. The legacy goldens (fig01/fig02/abl05/abl10) pin
# the pre-refactor drivers and must NEVER be re-captured from this repo.
#
# Usage: tools/repin_fast_goldens.sh [path/to/ldpr_cli]
set -euo pipefail

cli="${1:-build/tools/ldpr_cli}"
out_dir="$(dirname "$0")/../tests/golden"

# The exp_golden_test environment pin.
export LDPR_RUNS=1 LDPR_SCALE=0.02 LDPR_REIDENT_TARGETS=100
export LDPR_GBDT_ROUNDS=2 LDPR_GBDT_DEPTH=2 LDPR_FIG01_TRIALS=500
export LDPR_PROFILE=fast
unset LDPR_SMOKE LDPR_THREADS || true

for exp in fig05 fig16 abl06 abl07; do
  "$cli" experiment run "$exp" > "$out_dir/${exp}_fast.txt"
  echo "pinned $out_dir/${exp}_fast.txt"
done

# Paper-true-n pins: no scale override, so the fast profile's own default
# applies (ACSEmployment at ~3.2M users, Adult at its true 45'222).
unset LDPR_SCALE
for exp in fig05 fig16; do
  "$cli" experiment run "$exp" > "$out_dir/${exp}_fast_papern.txt"
  echo "pinned $out_dir/${exp}_fast_papern.txt"
done
